//! `trajmine` subcommand implementations.

use crate::args::Args;
use crate::input::{dr_config, load, load_with_policy, parse_bbox, parse_policy};
use datagen::{observe_directly, BusConfig, PostureConfig, UniformConfig, ZebraConfig};
use std::error::Error;
use trajfeed::{FeedOptions, FeedStats, SourceSpec};
use trajgeo::{Grid, Point2};
use trajpattern::{Miner, MiningParams};
use trajstream::StreamMiner;

/// Usage text printed on argument errors.
pub const USAGE: &str = "\
trajmine — TrajPattern reproduction CLI

USAGE:
  trajmine generate --workload <bus|zebranet|uniform|posture|dr-feed>
                    --out FILE [--seed N] [--sigma F] [--traces N]
                    [--snapshots N] [--routes N] [--geo LAT,LON]
  trajmine stats    --input FILE
  trajmine validate --input FILE [--max-sigma F] [--min-len N]
  trajmine mine     --input FILE | --db DIR [--from-id N] [--to-id N]
                    [--from-t N] [--to-t N] [--save-snapshot NAME]
                    --k N [--delta F] [--grid N] [--min-len N]
                    [--max-len N] [--gamma F] [--threads N] [--velocity true]
                    [--bbox X0,Y0,X1,Y1] [--map true] [--json FILE]
                    [--on-error strict|skip|repair]
                    [--checkpoint FILE] [--resume FILE]
  trajmine stream   --input SOURCE | --db DIR [--from-id N] [--to-id N]
                    [--from-t N] [--to-t N]
                    --window N [--emit-every M] [--k N]
                    [--delta F] [--grid N] [--bbox X0,Y0,X1,Y1] [--min-len N]
                    [--max-len N] [--gamma F] [--threads N] [--json FILE]
                    [--follow true] [--poll-ms N] [--on-error strict|skip|repair]
                    [--dr-u F] [--dr-c F] [--dr-growth F] [--dr-dt F]
                    [--checkpoint FILE] [--resume FILE]
  trajmine feed decode --input SOURCE --out FILE
                    [--on-error strict|skip|repair]
                    [--dr-u F] [--dr-c F] [--dr-growth F] [--dr-dt F]
  trajmine feed send --input FILE --listen HOST:PORT
                    [--accept N] [--delay-ms N] [--eof false]
  trajmine serve    --snapshot FILE | --db DIR --name NAME
                    [--addr HOST:PORT] [--workers N]
                    [--queue N] [--threads N] [--confirm F] [--watch true]
                    [--watch-interval-ms N] [--read-timeout-ms N]
                    [--write-timeout-ms N]
  trajmine serve    --live true --shards NAME=SOURCE,... | --db ROOT
                    [--checkpoint-dir DIR] [--poll-ms N] [--window N]
                    [--k N] [--delta F] [--grid N] [--bbox X0,Y0,X1,Y1]
                    [--min-len N] [--max-len N] [--gamma F]
                    [--addr HOST:PORT] [--workers N] [--queue N]
                    [--threads N] [--confirm F] [--on-error strict|skip|repair]
                    [--dr-u F] [--dr-c F] [--dr-growth F] [--dr-dt F]
  trajmine query prange --input FILE | --db DIR --p X,Y --delta F --t F
                        [--tau F] [--growth-rate F] [--brute true]
  trajmine query pnn    --input FILE | --db DIR --p X,Y --t F --k N
                        [--delta F] [--tau F] [--growth-rate F] [--brute true]
  trajmine db ingest  --db DIR --input FILE [--batch N] [--t N]
                      [--fsync always|every:N|never] [--segment-max-bytes N]
  trajmine db stat    --db DIR [--verify true]
  trajmine db compact --db DIR
  trajmine db export  --db DIR --out FILE [--from-id N] [--to-id N]
                      [--from-t N] [--to-t N]

Dataset files ending in .csv use the CSV schema `traj_id,snapshot,x,y,sigma`;
files ending in .events use the trajstream event-log format (one arriving
trajectory per line); anything else is JSON. `generate` observes
ground-truth paths with Gaussian noise --sigma (default 0.01) and emits an
event log when --out ends in .events. `generate --workload dr-feed`
instead emits a raw dead-reckoning message log (`trajfeed-dr v1`):
--routes trips (default 3), --traces vehicles, --snapshots reports per
vehicle; --geo LAT,LON anchors the log at a WGS84 origin and emits
lat/lon shapes for the geodetic decode path. `mine` lays an N×N grid (default 16)
over the dataset's bounding box (or --bbox, to pin the grid independently
of the data); --velocity true mines velocity trajectories instead of
locations; --gamma enables pattern-group discovery; --map true prints an
ASCII density map with the top pattern overlaid; --threads sets the scorer
worker count (0 = one per core; any value gives bit-identical results).
--on-error controls damaged-CSV handling: strict (default) aborts on the
first defect, skip drops bad rows/trajectories, repair additionally fixes
recoverable values; skip and repair print an ingest report to stderr.
--checkpoint FILE saves resumable state after every growth level;
--resume FILE continues an interrupted run (the data and parameters must
match the checkpointed run) with bit-identical results.

`db` manages an embedded crash-safe trajectory store: an append-only
directory of CRC-checksummed segment files plus an atomically-replaced
manifest. `db ingest` appends a dataset as batches of --batch (default
64) trajectories; --fsync picks the durability/throughput trade
(always = no acknowledged batch is ever lost; every:N = at most the
last N-1 batches; never = the OS decides; default every:8). Opening a
store recovers it: torn or garbage tail bytes in the active segment are
truncated back to the last valid checksum, and files stranded by an
interrupted compaction are swept — `db stat` reports what recovery
found, and --verify true re-checksums every sealed segment. `db export`
writes records back out (format by extension, like generate --out),
optionally sliced by record id and batch timestamp. `mine --db DIR`,
`stream --db DIR`, and `serve --db DIR --name NAME` read from a store
instead of a file; `mine --save-snapshot NAME` persists the mining
output durably into the store, where serve picks it up.

Every streaming consumer (`stream`, `serve --live` shard specs, `feed
decode`) names its source with one spec syntax: `path.events` (event
log), `path.drlog` or `dr:PATH` (dead-reckoning log), `tcp://host:port`
(the event-log protocol over a live socket), `dr+tcp://host:port`
(dead-reckoning over a socket); `--db DIR` polls a trajdb store by
record-id cursor. Dead-reckoning logs carry per-trip route shapes plus
odometer reports, optionally geodetic (a `geo lat0 lon0` header decodes
lat/lon via a local equirectangular projection); the server reconstructs
trajectories per the paper's §3.1/§3.2 — positions interpolated onto the
snapshot lattice (--dr-dt, default 1), σ = U/c with U growing while a
vehicle is silent (--dr-u, --dr-c, --dr-growth). Socket feeds reconnect
with bounded backoff and discard torn partial lines (counted in feed
stats). `feed decode` drains any file source into a dataset file —
what a live consumer would have mined, materialized offline. --on-error
applies the same strict/skip/repair sanitize stage to every source.
`feed send` is the matching transmitter: it binds --listen, accepts
--accept connections (default 1) one at a time, and streams a log file
to each (--delay-ms throttles per line) — socket sources are connecting
clients, so this is how to demo or smoke-test `tcp://` feeds end to end.
It appends the `# eof` terminator when the file lacks one (a close
without it reads as a transport failure and the consumer reconnects);
--eof false suppresses that, for exercising reconnect paths.

`stream` replays (or, with --follow true, tails) an append-only .events log
through the incremental sliding-window miner: the last --window arrivals
stay live, and after every event the maintained top-k is bit-identical to
`mine` over the window contents. Grids need fixing before data arrives, so
--bbox defaults to the unit square 0,0,1,1. Every --emit-every arrivals a
top-k snapshot is printed to stdout as one JSON line; the final snapshot is
also written to --json FILE. --follow true keeps polling the log for
appended events every --poll-ms (default 50; --idle-ms is the older
spelling) until a `# eof` line arrives. SIGINT/SIGTERM drain cleanly:
the loop stops at the next event boundary, flushes the final checkpoint,
and exits 0. --checkpoint FILE saves the stream state (window +
contribution ledger) after every emission and at the end; --resume FILE
(typically the same file) restores it and skips already-processed
events, continuing bit-identically — if the file does not exist yet, the
stream starts fresh.

`serve` loads a pattern snapshot — `mine --json` output or a `stream`
--checkpoint file — and answers HTTP/1.1 queries over it until SIGTERM or
SIGINT: GET /v1/topk (the snapshot), POST /v1/score (NM of every snapshot
pattern over a posted dataset, bit-identical to the library scorer),
POST /v1/match (best pattern + pattern-group for a partial trajectory),
POST /v1/predict (next-cell distribution; --confirm sets the confirmation
threshold, default 0.9), GET /healthz, and GET /metrics (plain-text
counters: requests, latency buckets, queue depth, scorer stats). The
POST routes share one query schema: `{\"trajectories\": [...],
\"options\": {\"measure\", \"use_index\", \"patterns\"}}` — a plain
dataset JSON works as-is; errors come back as
`{\"error\": {\"code\", \"message\"}}`. The pre-/v1 routes (/topk,
/score, /match, /predict) remain as deprecated aliases. The
accept queue is bounded (--queue, default 64) and answers 503 when full;
--workers (default 2) sets the handler pool; termination signals drain
in-flight requests before exit. --watch true hot-reloads the snapshot
whenever the file is rewritten (e.g. by a live `stream --checkpoint`
run).

`serve --live true` serves a sharded live fleet instead of one static
snapshot: each shard (from --shards name=log.events,... or every
ROOT/shards/<name>/ store under --db ROOT) runs its own sliding-window
stream miner — same --window/--k/--delta/... knobs as `stream` — and
atomically swaps a pre-serialized snapshot into the router whenever its
certified top-k changes, so GET /v1/topk?shard=NAME stays a pre-rendered
read and is bit-identical to `mine` over that shard's window. GET
/v1/topk with no shard (or shard=*) answers the deterministic cross-
shard merge (NM desc, pattern asc, ties to the first shard in sorted
name order); GET /v1/shards lists per-shard state (including each
window's object count and time bounds); /metrics adds per-shard labeled
counters. Scoring POST routes need ?shard=NAME in live mode. Each shard
checkpoints (--checkpoint-dir, or the shard store itself) on every swap
and at drain, so a relaunch resumes bit-identically.

`query prange` / `query pnn` answer probabilistic object queries offline
over a dataset file or store: prange returns every object whose §3.1
snapshot (interpolated to --t, with σ growing by --growth-rate per unit
of elapsed time) lies within --delta of --p with probability >= --tau;
pnn returns the --k most probable such objects. Results rank by
probability descending, ties by object id (dataset position). The same
queries are served live as POST /v1/prange and /v1/pnn — body
`{\"p\": [x, y], \"delta\", \"t\", \"tau\", \"k\", \"trajectories\"}` in
static mode, shard windows (with ?shard=NAME or deterministic fan-out
merge) in live mode — plus POST /v1/matchlive (`{\"pattern\": [cells],
\"threshold\"}`) for NM pattern matching over the live windows. A
σ-expanded-bbox index prunes candidates; --brute true (or
`\"options\": {\"use_index\": false}`) scans instead, bit-identically.";

/// Runs the subcommand in `args`.
pub fn dispatch(args: &Args) -> Result<(), Box<dyn Error>> {
    match args.command.as_str() {
        "generate" => generate(args),
        "stats" => stats(args),
        "validate" => validate(args),
        "mine" => mine_cmd(args),
        "stream" => stream_cmd(args),
        "serve" => serve_cmd(args),
        "feed decode" => feed_decode(args),
        "feed send" => feed_send(args),
        "db ingest" => crate::db::ingest(args),
        "db stat" => crate::db::stat(args),
        "db compact" => crate::db::compact(args),
        "db export" => crate::db::export(args),
        "query prange" => crate::query::prange(args),
        "query pnn" => crate::query::pnn(args),
        "help" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'\n{USAGE}").into()),
    }
}

fn generate(args: &Args) -> Result<(), Box<dyn Error>> {
    let workload = args.require("workload")?;
    let out = args.require("out")?.to_string();
    let seed: u64 = args.get_or("seed", 1u64)?;
    let sigma: f64 = args.get_or("sigma", 0.01f64)?;
    let snapshots: usize = args.get_or("snapshots", 100usize)?;
    let traces: usize = args.get_or("traces", 100usize)?;

    if workload == "dr-feed" {
        // Raw dead-reckoning message log, not a finished dataset: route
        // shapes plus odometer reports the feed spine reconstructs
        // server-side. --traces is the fleet size, --snapshots the
        // reports per vehicle; --geo lat,lon emits the geodetic variant.
        let routes: usize = args.get_or("routes", 3usize)?;
        let geo_origin = match args.get("geo") {
            None => None,
            Some(s) => {
                let parts: Vec<f64> = s
                    .split(',')
                    .map(|p| p.trim().parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("invalid --geo '{s}' (use lat,lon)"))?;
                if parts.len() != 2 {
                    return Err(format!("invalid --geo '{s}' (use lat,lon)").into());
                }
                Some((parts[0], parts[1]))
            }
        };
        let cfg = datagen::DrFeedConfig {
            routes,
            vehicles_per_route: (traces / routes.max(1)).max(1),
            reports_per_vehicle: snapshots.max(2),
            extent: if geo_origin.is_some() { 2000.0 } else { 1.0 },
            geo_origin,
            ..datagen::DrFeedConfig::default()
        };
        let text = datagen::dr_log(&cfg, seed);
        trajio::write_atomic(std::path::Path::new(&out), &text)?;
        eprintln!(
            "wrote dead-reckoning log: {} routes x {} vehicles, {} reports each{} to {out}",
            cfg.routes,
            cfg.vehicles_per_route,
            cfg.reports_per_vehicle,
            if cfg.geo_origin.is_some() { " (geodetic)" } else { "" },
        );
        return Ok(());
    }

    let paths: Vec<Vec<Point2>> = match workload {
        "bus" => {
            let mut cfg = BusConfig {
                snapshots,
                ..BusConfig::default()
            };
            // Scale the fleet to approximately the requested trace count.
            cfg.days = (traces / (cfg.num_routes * cfg.buses_per_route)).max(1);
            let mut p = cfg.paths_interleaved(seed);
            p.truncate(traces);
            p
        }
        "zebranet" => {
            let cfg = ZebraConfig {
                num_groups: (traces / 10).max(1),
                zebras_per_group: 10.min(traces.max(1)),
                snapshots,
                ..ZebraConfig::default()
            };
            let mut p = cfg.paths(seed);
            p.truncate(traces);
            p
        }
        "uniform" => UniformConfig {
            num_objects: traces,
            snapshots,
            ..UniformConfig::default()
        }
        .paths(seed),
        "posture" => PostureConfig {
            num_subjects: traces,
            snapshots,
            ..PostureConfig::default()
        }
        .paths(seed),
        other => return Err(format!("unknown workload '{other}'").into()),
    };
    let data = observe_directly(&paths, sigma, seed ^ 0x0b5e);
    let text = if out.ends_with(".csv") {
        trajdata::csv::to_csv(&data)
    } else if out.ends_with(".events") {
        datagen::event_log(&data)
    } else {
        data.to_json()
    };
    trajio::write_atomic(std::path::Path::new(&out), &text)?;
    eprintln!(
        "wrote {} trajectories ({} snapshots each) to {out}",
        data.len(),
        snapshots
    );
    Ok(())
}

fn stats(args: &Args) -> Result<(), Box<dyn Error>> {
    // `.events` logs go through the tail-recovering parser so a torn or
    // garbage tail is reported instead of aborting the whole summary.
    let input = args.require("input")?;
    let data = if input.ends_with(".events") {
        let raw = std::fs::read_to_string(input)?;
        let rec = trajdata::eventlog::recover_event_log(&raw)?;
        println!("log tail      : {}", rec.scan.verdict);
        rec.events.into_iter().collect()
    } else {
        load(args)?
    };
    match data.stats() {
        None => println!("empty dataset"),
        Some(s) => {
            println!("trajectories : {}", s.num_trajectories);
            println!("snapshots    : {} total", s.total_snapshots);
            println!(
                "lengths      : avg {:.1}, min {}, max {}",
                s.avg_len, s.min_len, s.max_len
            );
            println!("avg sigma    : {:.5}", s.avg_sigma);
            if let Some(b) = data.bounding_box() {
                println!(
                    "bounding box : ({:.4}, {:.4}) – ({:.4}, {:.4})",
                    b.min().x,
                    b.min().y,
                    b.max().x,
                    b.max().y
                );
            }
        }
    }
    Ok(())
}

/// Checks dataset invariants and prints a report; exits with an error if
/// any check fails. Catches the common data-preparation mistakes before
/// they surface as baffling mining output: inconsistent lengths (a sign
/// of truncated exports), absurd sigmas (unit confusion), and degenerate
/// spatial extent (wrong column order).
fn validate(args: &Args) -> Result<(), Box<dyn Error>> {
    let data = load(args)?;
    let max_sigma: f64 = args.get_or("max-sigma", 1.0f64)?;
    let min_len: usize = args.get_or("min-len", 2usize)?;
    let mut problems: Vec<String> = Vec::new();

    if data.is_empty() {
        problems.push("dataset has no trajectories".into());
    }
    for (i, t) in data.iter().enumerate() {
        if t.len() < min_len {
            problems.push(format!(
                "trajectory {i} has {} snapshots (< {min_len})",
                t.len()
            ));
        }
        for (j, sp) in t.points().iter().enumerate() {
            if sp.sigma > max_sigma {
                problems.push(format!(
                    "trajectory {i} snapshot {j}: sigma {} exceeds --max-sigma {max_sigma}",
                    sp.sigma
                ));
            }
        }
    }
    if let Some(b) = data.bounding_box() {
        let span = b.width().max(b.height());
        if span < 1e-9 {
            problems.push("all snapshots coincide (degenerate bounding box)".into());
        }
        let aspect = b.width().max(b.height()) / b.width().min(b.height()).max(1e-300);
        if aspect > 1e3 {
            problems.push(format!(
                "extreme aspect ratio {aspect:.0}:1 — check coordinate columns"
            ));
        }
    }

    // Cap the report to keep it readable.
    const MAX_REPORT: usize = 20;
    for p in problems.iter().take(MAX_REPORT) {
        println!("problem: {p}");
    }
    if problems.len() > MAX_REPORT {
        println!("… and {} more", problems.len() - MAX_REPORT);
    }
    if problems.is_empty() {
        println!("ok: {} trajectories pass all checks", data.len());
        Ok(())
    } else {
        Err(format!("{} validation problem(s)", problems.len()).into())
    }
}

fn mine_cmd(args: &Args) -> Result<(), Box<dyn Error>> {
    let policy = parse_policy(args)?;
    let store = match args.get("db") {
        Some(_) => Some(crate::db::open_store(args)?),
        None => None,
    };
    let (mut data, report) = match &store {
        Some(store) => (store.read_dataset(&crate::db::read_filter(args)?)?, None),
        None => load_with_policy(args, policy)?,
    };
    if let Some(r) = &report {
        if !r.is_clean() {
            eprintln!("ingest: {r}");
        }
    }
    let k: usize = args.get_or("k", 10usize)?;
    let grid_side: u32 = args.get_or("grid", 16u32)?;
    let min_len: usize = args.get_or("min-len", 1usize)?;
    let max_len: usize = args.get_or("max-len", 8usize)?;
    let velocity: bool = args.get_or("velocity", false)?;
    let threads: usize = args.get_or("threads", 1usize)?;

    if velocity {
        data = data.to_velocity().map_err(trajpattern::Error::from)?;
    }
    let bbox = match args.get("bbox") {
        Some(s) => parse_bbox(s)?,
        None => data
            .bounding_box()
            .ok_or("dataset has no snapshots to mine")?,
    };
    let grid = Grid::new(bbox, grid_side, grid_side).map_err(trajpattern::Error::from)?;
    let default_delta = grid.cell_width().min(grid.cell_height()) * 0.5;
    let delta: f64 = args.get_or("delta", default_delta)?;

    let mut params = MiningParams::new(k, delta)
        .and_then(|p| p.with_min_len(min_len))
        .and_then(|p| p.with_max_len(max_len))
        .map_err(trajpattern::Error::from)?;
    if let Some(g) = args.get("gamma") {
        let gamma: f64 = g
            .parse()
            .map_err(|_| format!("invalid --gamma value '{g}'"))?;
        params = params.with_gamma(gamma).map_err(trajpattern::Error::from)?;
    }

    let mut miner = Miner::new(&data, &grid)
        .params(params.clone())
        .threads(threads);
    if let Some(path) = args.get("checkpoint") {
        miner = miner.checkpoint(path);
    }
    if let Some(path) = args.get("resume") {
        miner = miner.resume(path);
    }
    let out = miner.mine()?;
    println!(
        "mined {} patterns in {} iterations ({} candidates scored)",
        out.patterns.len(),
        out.stats.iterations,
        out.stats.candidates_scored
    );
    if out.stats.degraded_shard_rescores > 0 {
        eprintln!(
            "note: degraded run — {} scorer shard(s) panicked and were rescored \
             sequentially; results are still exact",
            out.stats.degraded_shard_rescores
        );
    }
    for (i, m) in out.patterns.iter().enumerate() {
        let pts = m.pattern.centers(&grid);
        let path: Vec<String> = pts
            .iter()
            .map(|p| format!("({:.3},{:.3})", p.x, p.y))
            .collect();
        println!(
            "#{:<3} nm {:>10.2}  len {}  {}",
            i + 1,
            m.nm,
            m.pattern.len(),
            path.join(" ")
        );
    }
    if args.get_or("map", false)? {
        let overlay = out.patterns.first().map(|m| &m.pattern);
        print!("{}", crate::render::render_map(&data, &grid, overlay));
    }
    if !out.groups.is_empty() {
        println!("pattern groups ({}):", out.groups.len());
        for (i, g) in out.groups.iter().enumerate() {
            println!(
                "  group {:<3} {} patterns, representative nm {:.2}",
                i + 1,
                g.len(),
                g.representative().nm
            );
        }
    }
    if args.get("json").is_some() || args.get("save-snapshot").is_some() {
        let payload = crate::render::mining_json(&out, &grid, &params);
        let text = serde_json::to_string_pretty(&payload)?;
        if let Some(json_path) = args.get("json") {
            trajio::write_atomic(std::path::Path::new(json_path), &text)?;
            eprintln!("wrote {json_path}");
        }
        if let Some(name) = args.get("save-snapshot") {
            let store = store.as_ref().ok_or("--save-snapshot requires --db")?;
            let path = store.put_snapshot(name, &text)?;
            eprintln!("saved snapshot '{name}' to {}", path.display());
        }
    }
    Ok(())
}

/// `trajmine feed decode`: drain any file feed source — an `.events`
/// log, or a dead-reckoning log reconstructed server-side with the
/// `--dr-*` knobs — into a dataset file (format by `--out` extension,
/// like `generate --out`). This is the offline face of the feed spine:
/// the written dataset is bit-identical to what `stream` or a live
/// shard would have mined from the same source.
fn feed_decode(args: &Args) -> Result<(), Box<dyn Error>> {
    let out = args.require("out")?.to_string();
    let spec = SourceSpec::parse(args.require("input")?);
    if matches!(spec, SourceSpec::EventsTcp(_) | SourceSpec::DrTcp(_)) {
        return Err("feed decode reads file sources; socket feeds are stream-only".into());
    }
    let opts = FeedOptions {
        policy: parse_policy(args)?,
        dr: dr_config(args)?,
        ..FeedOptions::default()
    };
    let mut feed = trajfeed::open(&spec, &opts)?;
    let stop = std::sync::atomic::AtomicBool::new(false);
    let data: trajdata::Dataset = trajfeed::drain(feed.as_mut(), &stop)?.into_iter().collect();
    let fs = feed.stats();
    let text = if out.ends_with(".csv") {
        trajdata::csv::to_csv(&data)
    } else if out.ends_with(".events") {
        datagen::event_log(&data)
    } else {
        data.to_json()
    };
    let reconstructed = fs.reconstructed;
    let resampled = fs.resampled_points;
    trajio::write_atomic(std::path::Path::new(&out), &text)?;
    eprintln!(
        "decoded {} trajectories from {spec} to {out} \
         ({reconstructed} reconstructed, {resampled} resampled points)",
        data.len()
    );
    Ok(())
}

/// `trajmine feed send`: serve a feed log file over TCP, line by line.
///
/// The socket sources ([`trajfeed::TcpLineSource`]) are *connecting*
/// clients, so exercising `tcp://` / `dr+tcp://` specs needs something
/// listening with the log bytes — this is that something: bind
/// `--listen`, accept `--accept` connections (default 1) one at a time,
/// and stream the file to each, optionally throttled by `--delay-ms`
/// per line to simulate a live feed. A log ending in `# eof` makes the
/// consumer finish cleanly; more `--accept`s than one let reconnect
/// paths replay the log.
fn feed_send(args: &Args) -> Result<(), Box<dyn Error>> {
    use std::io::Write;

    let input = args.require("input")?.to_string();
    let listen = args.require("listen")?.to_string();
    let accepts: usize = args.get_or("accept", 1usize)?;
    let delay_ms: u64 = args.get_or("delay-ms", 0u64)?;
    let mut text = std::fs::read_to_string(&input)?;
    // Closing a socket without `# eof` reads as a transport failure and
    // the consumer reconnects; terminate the protocol properly unless
    // the caller is deliberately testing that path (--eof false).
    if args.get_or("eof", true)? && text.lines().last() != Some("# eof") {
        if !text.ends_with('\n') && !text.is_empty() {
            text.push('\n');
        }
        text.push_str("# eof\n");
    }
    let listener = std::net::TcpListener::bind(&listen)?;
    eprintln!(
        "serving {input} on {} ({accepts} connection{})",
        listener.local_addr()?,
        if accepts == 1 { "" } else { "s" },
    );
    for _ in 0..accepts.max(1) {
        let (mut conn, peer) = listener.accept()?;
        eprintln!("feed send: streaming to {peer}");
        let sent = (|| -> std::io::Result<()> {
            for line in text.split_inclusive('\n') {
                conn.write_all(line.as_bytes())?;
                if delay_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                }
            }
            conn.flush()
        })();
        match sent {
            Ok(()) => eprintln!("feed send: done with {peer}"),
            // A consumer hanging up early (it saw what it needed, or
            // it is testing reconnects) is not our failure.
            Err(e) => eprintln!("feed send: {peer} disconnected ({e})"),
        }
    }
    Ok(())
}

/// `trajmine serve`: load a snapshot (mine JSON or stream checkpoint)
/// and answer pattern queries over HTTP until a termination signal.
fn serve_cmd(args: &Args) -> Result<(), Box<dyn Error>> {
    use std::time::Duration;

    if args.get_or("live", false)? {
        return crate::live::serve_live(args);
    }

    let snapshot_path = match (args.get("snapshot"), args.get("db")) {
        (Some(path), None) => std::path::PathBuf::from(path),
        (None, Some(dir)) => {
            let name = args.require("name")?;
            trajdb::Store::snapshot_path_in(std::path::Path::new(dir), name)?
        }
        (Some(_), Some(_)) => return Err("pass either --snapshot or --db, not both".into()),
        (None, None) => return Err("serve needs --snapshot FILE or --db DIR --name NAME".into()),
    };
    let confirm: f64 = args.get_or("confirm", 0.9f64)?;
    let cfg = trajserve::ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers: args.get_or("workers", 2usize)?,
        queue: args.get_or("queue", 64usize)?,
        read_timeout: Duration::from_millis(args.get_or("read-timeout-ms", 5000u64)?),
        write_timeout: Duration::from_millis(args.get_or("write-timeout-ms", 5000u64)?),
        scorer_threads: args.get_or("threads", 1usize)?,
        confirm_threshold: confirm,
        watch: args.get_or("watch", false)?,
        watch_interval: Duration::from_millis(args.get_or("watch-interval-ms", 500u64)?),
        snapshot_path: Some(snapshot_path.clone()),
        allow_panic_injection: args.get_or("allow-panic-injection", false)?,
        ..trajserve::ServerConfig::default()
    };

    let snapshot = trajserve::Snapshot::load(&snapshot_path)?;
    eprintln!(
        "loaded {}: {} patterns, {} groups{}",
        snapshot_path.display(),
        snapshot.patterns.len(),
        snapshot.groups.len(),
        if snapshot.stream.is_some() {
            " (stream checkpoint)"
        } else {
            ""
        }
    );
    let server = trajserve::Server::bind(snapshot, cfg.clone())?;
    let addr = server.local_addr()?;
    eprintln!(
        "trajserve listening on http://{addr} ({} workers, queue {}{})",
        cfg.workers,
        cfg.queue,
        if cfg.watch { ", watching snapshot" } else { "" }
    );

    // Flip the server's shutdown switch when SIGTERM/SIGINT arrives, so
    // in-flight requests drain and `run` returns for a clean exit 0.
    trajserve::signal::install_termination_handler();
    let flag = trajserve::signal::termination_flag();
    let handle = server.handle();
    std::thread::spawn(move || {
        while !flag.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("termination signal received: draining in-flight requests");
        handle.shutdown();
    });

    server.run()?;
    eprintln!("trajserve stopped cleanly");
    Ok(())
}

/// `trajmine stream`: replay or tail any feed source — an append-only
/// `.events` log, a dead-reckoning log, a trajdb store, or either line
/// protocol over TCP — through the incremental sliding-window miner.
/// Every source runs the same [`trajfeed::pump`] loop.
fn stream_cmd(args: &Args) -> Result<(), Box<dyn Error>> {
    let use_db = args.get("db").is_some();
    if use_db && args.get("input").is_some() {
        return Err("pass either --input or --db, not both".into());
    }
    let window: u64 = args.get_or("window", 64u64)?;
    if window == 0 {
        return Err("--window must be at least 1".into());
    }
    let emit_every: u64 = args.get_or("emit-every", 0u64)?;
    let follow: bool = args.get_or("follow", false)?;
    if use_db && follow {
        return Err("--follow tails a file source; it cannot be combined with --db".into());
    }
    let spec = if use_db {
        SourceSpec::Db(std::path::PathBuf::from(args.require("db")?))
    } else {
        SourceSpec::parse(args.require("input")?)
    };
    let opts = FeedOptions {
        follow,
        poll: stream_poll_interval(args)?,
        policy: parse_policy(args)?,
        dr: dr_config(args)?,
        db_filter: crate::db::read_filter(args)?,
        ..FeedOptions::default()
    };
    let (grid, params) = stream_mining_setup(args)?;

    let mut miner = match args.get("resume") {
        Some(path) if std::path::Path::new(path).exists() => {
            let m = StreamMiner::resume(std::path::Path::new(path))?;
            eprintln!(
                "resumed from {path}: {} arrivals processed, window {}",
                m.stats().arrivals,
                m.stats().window_len
            );
            m
        }
        _ => StreamMiner::new(grid, params).map_err(trajpattern::Error::from)?,
    };
    let skip = miner.next_seq();
    let checkpoint_path = args.get("checkpoint").map(std::path::PathBuf::from);

    // A termination signal flips the shared flag instead of killing the
    // process: the pump loop notices, drains what it already absorbed,
    // flushes the final checkpoint, and exits 0 — the same signal-flag
    // pattern `serve` uses for in-flight requests.
    trajserve::signal::install_termination_handler();
    let stop = trajserve::signal::termination_flag();

    let mut feed = trajfeed::open(&spec, &opts)?;
    let pumped = trajfeed::pump(
        feed.as_mut(),
        &stop,
        skip,
        |traj| {
            miner.slide(traj, window);
            emit_snapshot(&miner, emit_every, checkpoint_path.as_deref())
        },
        |_| {},
    );
    let feed_stats = feed.stats().clone();
    drop(feed);
    match pumped {
        Ok(_) => {}
        Err(trajfeed::PumpError::Feed(e)) => return Err(Box::new(e)),
        Err(trajfeed::PumpError::Sink(e)) => return Err(e),
    }
    if stop.load(std::sync::atomic::Ordering::SeqCst) {
        eprintln!("termination signal received: draining stream state");
    }

    finish_stream(args, &mut miner, checkpoint_path.as_deref(), Some(&feed_stats))
}

/// Prints the periodic top-k snapshot line (and refreshes the
/// checkpoint) when the arrival count hits an `--emit-every` boundary.
fn emit_snapshot(
    miner: &StreamMiner,
    emit_every: u64,
    checkpoint_path: Option<&std::path::Path>,
) -> Result<(), Box<dyn Error>> {
    if emit_every > 0 && miner.stats().arrivals.is_multiple_of(emit_every) {
        println!(
            "{}",
            serde_json::to_string(&crate::render::stream_json(miner))?
        );
        if let Some(path) = checkpoint_path {
            miner.checkpoint(path)?;
        }
    }
    Ok(())
}

/// The idle/poll interval shared by `stream --follow` and the live
/// fleet ingesters: `--poll-ms`, with `--idle-ms` kept as the older
/// spelling of the same knob.
pub(crate) fn stream_poll_interval(args: &Args) -> Result<std::time::Duration, Box<dyn Error>> {
    let idle_ms: u64 = args.get_or("idle-ms", 50u64)?;
    let poll_ms: u64 = args.get_or("poll-ms", idle_ms)?;
    Ok(std::time::Duration::from_millis(poll_ms))
}

/// Builds the fixed grid and mining parameters `stream` and
/// `serve --live` share (`--bbox` defaults to the unit square — the
/// grid must exist before any data arrives).
pub(crate) fn stream_mining_setup(args: &Args) -> Result<(Grid, MiningParams), Box<dyn Error>> {
    let k: usize = args.get_or("k", 10usize)?;
    let grid_side: u32 = args.get_or("grid", 16u32)?;
    let bbox = parse_bbox(args.get("bbox").unwrap_or("0,0,1,1"))?;
    let grid = Grid::new(bbox, grid_side, grid_side).map_err(trajpattern::Error::from)?;
    let default_delta = grid.cell_width().min(grid.cell_height()) * 0.5;
    let delta: f64 = args.get_or("delta", default_delta)?;
    let min_len: usize = args.get_or("min-len", 1usize)?;
    let max_len: usize = args.get_or("max-len", 8usize)?;
    let threads: usize = args.get_or("threads", 1usize)?;

    let mut params = MiningParams::new(k, delta)
        .and_then(|p| p.with_min_len(min_len))
        .and_then(|p| p.with_max_len(max_len))
        .map_err(trajpattern::Error::from)?;
    if let Some(g) = args.get("gamma") {
        let gamma: f64 = g
            .parse()
            .map_err(|_| format!("invalid --gamma value '{g}'"))?;
        params = params.with_gamma(gamma).map_err(trajpattern::Error::from)?;
    }
    params.threads = threads;
    Ok((grid, params))
}

/// Shared tail of `trajmine stream`: print the run summary and top-k,
/// write `--json` (including the feed's ingest counters), and take the
/// final checkpoint.
fn finish_stream(
    args: &Args,
    miner: &mut StreamMiner,
    checkpoint_path: Option<&std::path::Path>,
    feed_stats: Option<&FeedStats>,
) -> Result<(), Box<dyn Error>> {
    let s = miner.stats();
    eprintln!(
        "stream done: {} arrivals, {} evictions, window {}, {} ledger patterns, \
         {} repairs ({} candidates rescored), {} deltas",
        s.arrivals,
        s.evictions,
        s.window_len,
        s.ledger_patterns,
        s.repairs,
        s.repair_scored,
        s.deltas_applied
    );
    if let Some(fs) = feed_stats {
        eprintln!(
            "feed: {} records in {} batches, {} defect lines, {} dropped, {} repaired, \
             {} reconstructed ({} resampled points), {} reconnects",
            fs.records,
            fs.batches,
            fs.defect_lines,
            fs.defect_records,
            fs.repaired_records,
            fs.reconstructed,
            fs.resampled_points,
            fs.reconnects
        );
    }
    for (i, m) in miner.topk().iter().enumerate() {
        println!("#{:<3} nm {:>10.2}  len {}", i + 1, m.nm, m.pattern.len());
    }
    if let Some(json_path) = args.get("json") {
        let mut payload = crate::render::stream_json(miner);
        if let (Some(fs), serde_json::Value::Object(fields)) = (feed_stats, &mut payload) {
            fields.push(("feed".to_string(), serde_json::to_value(fs)?));
        }
        trajio::write_atomic(
            std::path::Path::new(json_path),
            &serde_json::to_string_pretty(&payload)?,
        )?;
        eprintln!("wrote {json_path}");
    }
    if let Some(path) = checkpoint_path {
        miner.checkpoint(path)?;
        eprintln!("checkpointed stream state to {}", path.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdata::eventlog::EVENTS_VERSION_LINE;

    fn args(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string()).collect()).unwrap()
    }

    #[test]
    fn generate_stats_mine_round_trip() {
        let dir = std::env::temp_dir().join(format!("trajmine-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("d.json");
        let data_str = data_path.to_str().unwrap();

        dispatch(&args(&[
            "generate",
            "--workload",
            "uniform",
            "--traces",
            "5",
            "--snapshots",
            "20",
            "--out",
            data_str,
        ]))
        .unwrap();
        assert!(data_path.exists());

        dispatch(&args(&["stats", "--input", data_str])).unwrap();

        let json_path = dir.join("p.json");
        dispatch(&args(&[
            "mine",
            "--input",
            data_str,
            "--k",
            "3",
            "--grid",
            "6",
            "--max-len",
            "3",
            "--json",
            json_path.to_str().unwrap(),
        ]))
        .unwrap();
        let mined: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        assert_eq!(mined["patterns"].as_array().unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_format_round_trips_through_cli() {
        let dir = std::env::temp_dir().join(format!("trajmine-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("d.csv");
        let data_str = data_path.to_str().unwrap();
        dispatch(&args(&[
            "generate",
            "--workload",
            "posture",
            "--traces",
            "4",
            "--snapshots",
            "12",
            "--out",
            data_str,
        ]))
        .unwrap();
        let head: String = std::fs::read_to_string(&data_path)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_string();
        assert_eq!(head, "traj_id,snapshot,x,y,sigma");
        dispatch(&args(&["stats", "--input", data_str])).unwrap();
        dispatch(&args(&[
            "mine",
            "--input",
            data_str,
            "--k",
            "2",
            "--grid",
            "5",
            "--max-len",
            "2",
            "--map",
            "true",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dr_feed_workload_decodes_and_mines() {
        let dir = std::env::temp_dir().join(format!("trajmine-drgen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("fleet.drlog");
        let log_str = log_path.to_str().unwrap();
        dispatch(&args(&[
            "generate",
            "--workload",
            "dr-feed",
            "--routes",
            "2",
            "--traces",
            "6",
            "--snapshots",
            "10",
            "--out",
            log_str,
        ]))
        .unwrap();
        let log = std::fs::read_to_string(&log_path).unwrap();
        assert!(log.starts_with(trajfeed::DR_VERSION_LINE));
        assert!(log.trim_end().ends_with("# eof"));

        // The raw log decodes into a dataset the regular pipeline accepts.
        let decoded = dir.join("decoded.csv");
        dispatch(&args(&[
            "feed",
            "decode",
            "--input",
            log_str,
            "--out",
            decoded.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&args(&[
            "mine",
            "--input",
            decoded.to_str().unwrap(),
            "--k",
            "2",
            "--grid",
            "5",
            "--max-len",
            "2",
        ]))
        .unwrap();

        // Geodetic variant carries the geo header.
        let geo_path = dir.join("geo.drlog");
        dispatch(&args(&[
            "generate",
            "--workload",
            "dr-feed",
            "--geo",
            "47.6062,-122.3321",
            "--out",
            geo_path.to_str().unwrap(),
        ]))
        .unwrap();
        let geo_log = std::fs::read_to_string(&geo_path).unwrap();
        assert!(geo_log.lines().nth(1).unwrap().starts_with("geo "));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        let dir = std::env::temp_dir().join(format!("trajmine-val-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        dispatch(&args(&[
            "generate",
            "--workload",
            "uniform",
            "--traces",
            "3",
            "--snapshots",
            "10",
            "--out",
            good.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&args(&["validate", "--input", good.to_str().unwrap()])).unwrap();
        // Absurd sigma bound makes it fail.
        assert!(dispatch(&args(&[
            "validate",
            "--input",
            good.to_str().unwrap(),
            "--max-sigma",
            "0.000001"
        ]))
        .is_err());
        // A single-snapshot trajectory fails the length check.
        let bad = dir.join("bad.csv");
        std::fs::write(
            &bad,
            "traj_id,snapshot,x,y,sigma
0,0,0.5,0.5,0.01
",
        )
        .unwrap();
        assert!(dispatch(&args(&["validate", "--input", bad.to_str().unwrap()])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mine_on_error_skip_survives_damaged_csv() {
        let dir = std::env::temp_dir().join(format!("trajmine-skip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.csv");
        let mut text = String::from("traj_id,snapshot,x,y,sigma\n");
        for t in 0..6 {
            for s in 0..5 {
                text.push_str(&format!("{t},{s},0.{},0.5,0.01\n", s + 1));
            }
        }
        text.push_str("6,0,not-a-number,0.5,0.01\n"); // bad row
        text.push_str("6,1,0.2,0.5,0.01\n");
        std::fs::write(&bad, &text).unwrap();
        let base = [
            "mine",
            "--input",
            "",
            "--k",
            "2",
            "--grid",
            "5",
            "--max-len",
            "2",
        ];
        let mut strict = base.to_vec();
        strict[2] = bad.to_str().unwrap();
        assert!(dispatch(&args(&strict)).is_err());
        let mut skip = strict.clone();
        skip.extend(["--on-error", "skip"]);
        dispatch(&args(&skip)).unwrap();
        let mut repair = strict.clone();
        repair.extend(["--on-error", "repair"]);
        dispatch(&args(&repair)).unwrap();
        let mut bogus = strict.clone();
        bogus.extend(["--on-error", "explode"]);
        assert!(dispatch(&args(&bogus)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mine_checkpoint_then_resume_round_trips() {
        let dir = std::env::temp_dir().join(format!("trajmine-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("d.csv");
        let data_str = data_path.to_str().unwrap();
        dispatch(&args(&[
            "generate",
            "--workload",
            "bus",
            "--traces",
            "6",
            "--snapshots",
            "12",
            "--out",
            data_str,
        ]))
        .unwrap();
        let ckpt = dir.join("run.ckpt");
        let ckpt_str = ckpt.to_str().unwrap();
        let common = [
            "mine",
            "--input",
            data_str,
            "--k",
            "3",
            "--grid",
            "5",
            "--max-len",
            "3",
        ];
        let mut with_ckpt = common.to_vec();
        with_ckpt.extend(["--checkpoint", ckpt_str]);
        dispatch(&args(&with_ckpt)).unwrap();
        assert!(ckpt.exists(), "checkpoint file must be written");
        let mut resumed = common.to_vec();
        resumed.extend(["--resume", ckpt_str]);
        dispatch(&args(&resumed)).unwrap();
        // Resuming under different parameters is rejected.
        let mut wrong = resumed.clone();
        wrong[4] = "4";
        assert!(dispatch(&args(&wrong)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_final_snapshot_matches_mine_on_same_window() {
        let dir = std::env::temp_dir().join(format!("trajmine-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("d.events");
        let events_str = events.to_str().unwrap();
        dispatch(&args(&[
            "generate",
            "--workload",
            "bus",
            "--traces",
            "8",
            "--snapshots",
            "12",
            "--out",
            events_str,
        ]))
        .unwrap();
        assert!(std::fs::read_to_string(&events)
            .unwrap()
            .starts_with(EVENTS_VERSION_LINE));

        // Window covers the whole log, so `mine` over the same .events
        // input with the same pinned grid must agree bit-for-bit.
        let stream_json = dir.join("stream.json");
        dispatch(&args(&[
            "stream",
            "--input",
            events_str,
            "--window",
            "8",
            "--k",
            "3",
            "--grid",
            "6",
            "--max-len",
            "3",
            "--bbox",
            "0,0,1,1",
            "--emit-every",
            "3",
            "--json",
            stream_json.to_str().unwrap(),
        ]))
        .unwrap();
        let mine_json = dir.join("mine.json");
        dispatch(&args(&[
            "mine",
            "--input",
            events_str,
            "--k",
            "3",
            "--grid",
            "6",
            "--max-len",
            "3",
            "--bbox",
            "0,0,1,1",
            "--json",
            mine_json.to_str().unwrap(),
        ]))
        .unwrap();
        let streamed: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&stream_json).unwrap()).unwrap();
        let mined: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&mine_json).unwrap()).unwrap();
        assert_eq!(streamed["patterns"], mined["patterns"]);
        assert!(streamed["stream"]["arrivals"].as_u64().unwrap() == 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_checkpoint_resume_continues_bit_identically() {
        let dir = std::env::temp_dir().join(format!("trajmine-sckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let all = dir.join("all.events");
        dispatch(&args(&[
            "generate",
            "--workload",
            "zebranet",
            "--traces",
            "10",
            "--snapshots",
            "10",
            "--out",
            all.to_str().unwrap(),
        ]))
        .unwrap();
        // Split the log: first 6 events, then the full file.
        let text = std::fs::read_to_string(&all).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let partial = dir.join("partial.events");
        std::fs::write(&partial, lines[..7].join("\n") + "\n").unwrap();

        let ckpt = dir.join("stream.ckpt");
        let ckpt_str = ckpt.to_str().unwrap();
        let common = ["--window", "4", "--k", "3", "--grid", "5", "--max-len", "3"];
        // Pass 1: process the partial log, checkpointing at the end.
        let mut first = vec!["stream", "--input", partial.to_str().unwrap()];
        first.extend(common);
        first.extend(["--checkpoint", ckpt_str]);
        dispatch(&args(&first)).unwrap();
        assert!(ckpt.exists());
        // Pass 2: resume against the full log; already-processed events
        // are skipped.
        let resumed_json = dir.join("resumed.json");
        let mut second = vec!["stream", "--input", all.to_str().unwrap()];
        second.extend(common);
        second.extend([
            "--resume",
            ckpt_str,
            "--json",
            resumed_json.to_str().unwrap(),
        ]);
        dispatch(&args(&second)).unwrap();
        // Reference: one uninterrupted run over the full log.
        let straight_json = dir.join("straight.json");
        let mut straight = vec!["stream", "--input", all.to_str().unwrap()];
        straight.extend(common);
        straight.extend(["--json", straight_json.to_str().unwrap()]);
        dispatch(&args(&straight)).unwrap();
        let a: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&resumed_json).unwrap()).unwrap();
        let b: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&straight_json).unwrap()).unwrap();
        assert_eq!(a["patterns"], b["patterns"]);
        assert_eq!(a["stream"], b["stream"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn feed_send_streams_a_log_that_stream_mines_identically() {
        let dir = std::env::temp_dir().join(format!("trajmine-fsend-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("w.events");
        let events_str = events.to_str().unwrap().to_string();
        dispatch(&args(&[
            "generate",
            "--workload",
            "bus",
            "--traces",
            "8",
            "--snapshots",
            "10",
            "--out",
            &events_str,
        ]))
        .unwrap();

        // Pick a free port by binding and dropping a listener first.
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let listen = format!("127.0.0.1:{port}");
        let sender_args = args(&["feed", "send", "--input", &events_str, "--listen", &listen]);
        let sender =
            std::thread::spawn(move || dispatch(&sender_args).map_err(|e| e.to_string()));
        // Wait for the listener to come up before the client connects.
        std::thread::sleep(std::time::Duration::from_millis(100));

        let common = [
            "--window", "8", "--k", "3", "--grid", "6", "--max-len", "3", "--bbox", "0,0,1,1",
        ];
        let sock_json = dir.join("sock.json");
        let mut over_socket = vec!["stream", "--input"];
        let url = format!("tcp://{listen}");
        over_socket.push(&url);
        over_socket.extend(common);
        over_socket.extend(["--json", sock_json.to_str().unwrap()]);
        dispatch(&args(&over_socket)).unwrap();
        sender.join().unwrap().unwrap();

        let file_json = dir.join("file.json");
        let mut over_file = vec!["stream", "--input", &events_str];
        over_file.extend(common);
        over_file.extend(["--json", file_json.to_str().unwrap()]);
        dispatch(&args(&over_file)).unwrap();

        let a: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&sock_json).unwrap()).unwrap();
        let b: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&file_json).unwrap()).unwrap();
        assert_eq!(a["patterns"], b["patterns"]);
        assert_eq!(a["stream"], b["stream"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_rejects_bad_flags() {
        assert!(dispatch(&args(&["stream", "--input", "x.events", "--window", "0"])).is_err());
        assert!(dispatch(&args(&["stream", "--input", "x.events", "--bbox", "0,0,1"])).is_err());
        assert!(dispatch(&args(&["mine", "--input", "x.json", "--bbox", "bad"])).is_err());
    }

    #[test]
    fn serve_rejects_missing_or_bad_snapshot() {
        // --snapshot is required.
        assert!(dispatch(&args(&["serve"])).is_err());
        // A nonexistent snapshot fails before any socket is bound.
        assert!(dispatch(&args(&["serve", "--snapshot", "/nonexistent/snap.json"])).is_err());
        // Garbage snapshot content is rejected with a schema error.
        let dir = std::env::temp_dir().join(format!("trajmine-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"patterns\": []}").unwrap();
        assert!(dispatch(&args(&["serve", "--snapshot", bad.to_str().unwrap()])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mine_json_uses_snapshot_schema() {
        let dir = std::env::temp_dir().join(format!("trajmine-schema-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("d.json");
        let data_str = data_path.to_str().unwrap();
        dispatch(&args(&[
            "generate",
            "--workload",
            "uniform",
            "--traces",
            "4",
            "--snapshots",
            "15",
            "--out",
            data_str,
        ]))
        .unwrap();
        let json_path = dir.join("p.json");
        dispatch(&args(&[
            "mine",
            "--input",
            data_str,
            "--k",
            "2",
            "--grid",
            "5",
            "--max-len",
            "2",
            "--json",
            json_path.to_str().unwrap(),
        ]))
        .unwrap();
        // The written file is a valid, loadable trajserve snapshot.
        let snap = trajserve::Snapshot::load(&json_path).unwrap();
        assert_eq!(snap.patterns.len(), 2);
        assert!(snap.stream.is_none());
        let raw: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        assert_eq!(raw["schema"].as_str().unwrap(), trajserve::SCHEMA);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(dispatch(&args(&["frobnicate"])).is_err());
        assert!(dispatch(&args(&["db frobnicate"])).is_err());
    }

    #[test]
    fn db_ingest_stat_export_compact_round_trip() {
        let dir = std::env::temp_dir().join(format!("trajmine-db-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("d.json");
        let data_str = data_path.to_str().unwrap();
        let store = dir.join("store");
        let store_str = store.to_str().unwrap();
        dispatch(&args(&[
            "generate",
            "--workload",
            "uniform",
            "--traces",
            "6",
            "--snapshots",
            "12",
            "--out",
            data_str,
        ]))
        .unwrap();

        dispatch(&args(&[
            "db", "ingest", "--db", store_str, "--input", data_str, "--batch", "2", "--fsync",
            "always",
        ]))
        .unwrap();
        dispatch(&args(&[
            "db", "stat", "--db", store_str, "--verify", "true",
        ]))
        .unwrap();
        dispatch(&args(&["db", "compact", "--db", store_str])).unwrap();

        // Export must round-trip the ingested dataset byte-identically
        // (JSON serialisation is deterministic and bit-exact).
        let out = dir.join("export.json");
        dispatch(&args(&[
            "db",
            "export",
            "--db",
            store_str,
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let original = std::fs::read_to_string(&data_path).unwrap();
        let exported = std::fs::read_to_string(&out).unwrap();
        assert_eq!(original, exported);

        // An id-range export slices by record id.
        let sliced = dir.join("slice.json");
        dispatch(&args(&[
            "db",
            "export",
            "--db",
            store_str,
            "--out",
            sliced.to_str().unwrap(),
            "--from-id",
            "2",
            "--to-id",
            "4",
        ]))
        .unwrap();
        let d = trajdata::Dataset::from_json(&std::fs::read_to_string(&sliced).unwrap()).unwrap();
        assert_eq!(d.len(), 3);

        // Bad flags are rejected.
        assert!(dispatch(&args(&[
            "db",
            "ingest",
            "--db",
            store_str,
            "--input",
            data_str,
            "--fsync",
            "sometimes",
        ]))
        .is_err());
        assert!(dispatch(&args(&[
            "db", "ingest", "--db", store_str, "--input", data_str, "--batch", "0",
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mine_from_db_matches_mine_from_file() {
        let dir = std::env::temp_dir().join(format!("trajmine-dbmine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("d.json");
        let data_str = data_path.to_str().unwrap();
        let store = dir.join("store");
        let store_str = store.to_str().unwrap();
        dispatch(&args(&[
            "generate",
            "--workload",
            "bus",
            "--traces",
            "6",
            "--snapshots",
            "12",
            "--out",
            data_str,
        ]))
        .unwrap();
        dispatch(&args(&[
            "db", "ingest", "--db", store_str, "--input", data_str,
        ]))
        .unwrap();

        let from_file = dir.join("file.json");
        let from_db = dir.join("db.json");
        let tail = [
            "--k",
            "3",
            "--grid",
            "6",
            "--max-len",
            "3",
            "--bbox",
            "0,0,1,1",
        ];
        let mut a = vec![
            "mine",
            "--input",
            data_str,
            "--json",
            from_file.to_str().unwrap(),
        ];
        a.extend(tail);
        dispatch(&args(&a)).unwrap();
        let mut b = vec![
            "mine",
            "--db",
            store_str,
            "--json",
            from_db.to_str().unwrap(),
            "--save-snapshot",
            "nightly",
        ];
        b.extend(tail);
        dispatch(&args(&b)).unwrap();
        let fa: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&from_file).unwrap()).unwrap();
        let fb: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&from_db).unwrap()).unwrap();
        assert_eq!(fa["patterns"], fb["patterns"]);

        // --save-snapshot persisted a loadable trajserve snapshot in the
        // store, exactly where serve --db would look for it.
        let snap_path = trajdb::Store::snapshot_path_in(&store, "nightly").unwrap();
        let snap = trajserve::Snapshot::load(&snap_path).unwrap();
        assert_eq!(snap.patterns.len(), 3);
        // --save-snapshot without --db is rejected.
        let mut c = vec!["mine", "--input", data_str, "--save-snapshot", "x"];
        c.extend(tail);
        assert!(dispatch(&args(&c)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_from_db_matches_stream_from_events() {
        let dir = std::env::temp_dir().join(format!("trajmine-dbstream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("d.events");
        let events_str = events.to_str().unwrap();
        let store = dir.join("store");
        let store_str = store.to_str().unwrap();
        dispatch(&args(&[
            "generate",
            "--workload",
            "zebranet",
            "--traces",
            "8",
            "--snapshots",
            "10",
            "--out",
            events_str,
        ]))
        .unwrap();
        dispatch(&args(&[
            "db", "ingest", "--db", store_str, "--input", events_str, "--batch", "3",
        ]))
        .unwrap();

        let tail = ["--window", "4", "--k", "3", "--grid", "5", "--max-len", "3"];
        let from_events = dir.join("events.json");
        let from_db = dir.join("db.json");
        let mut a = vec![
            "stream",
            "--input",
            events_str,
            "--json",
            from_events.to_str().unwrap(),
        ];
        a.extend(tail);
        dispatch(&args(&a)).unwrap();
        let mut b = vec![
            "stream",
            "--db",
            store_str,
            "--json",
            from_db.to_str().unwrap(),
        ];
        b.extend(tail);
        dispatch(&args(&b)).unwrap();
        let fa: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&from_events).unwrap()).unwrap();
        let fb: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&from_db).unwrap()).unwrap();
        assert_eq!(fa["patterns"], fb["patterns"]);
        assert_eq!(fa["stream"], fb["stream"]);

        // Conflicting and unsupported flag combinations are rejected.
        assert!(dispatch(&args(&[
            "stream", "--db", store_str, "--input", events_str, "--window", "4",
        ]))
        .is_err());
        assert!(dispatch(&args(&[
            "stream", "--db", store_str, "--window", "4", "--follow", "true",
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_resolves_snapshots_from_a_store() {
        // Without --snapshot or --db, and with both, serve refuses.
        assert!(dispatch(&args(&["serve"])).is_err());
        assert!(dispatch(&args(&[
            "serve",
            "--snapshot",
            "x.json",
            "--db",
            "store",
            "--name",
            "n",
        ]))
        .is_err());
        // --db without --name is missing a required flag.
        assert!(dispatch(&args(&["serve", "--db", "store"])).is_err());
        // A store without the named snapshot fails at load, proving the
        // path was resolved into the store's snapshots directory.
        let dir = std::env::temp_dir().join(format!("trajmine-dbserve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = dispatch(&args(&[
            "serve",
            "--db",
            dir.to_str().unwrap(),
            "--name",
            "missing",
        ]))
        .unwrap_err()
        .to_string();
        assert!(err.contains("missing"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_workload_errors() {
        let dir = std::env::temp_dir();
        let out = dir.join("never-written.json");
        assert!(dispatch(&args(&[
            "generate",
            "--workload",
            "submarines",
            "--out",
            out.to_str().unwrap()
        ]))
        .is_err());
    }

    #[test]
    fn mine_velocity_mode_works() {
        let dir = std::env::temp_dir().join(format!("trajmine-vel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("d.json");
        let data_str = data_path.to_str().unwrap();
        dispatch(&args(&[
            "generate",
            "--workload",
            "zebranet",
            "--traces",
            "8",
            "--snapshots",
            "15",
            "--out",
            data_str,
        ]))
        .unwrap();
        dispatch(&args(&[
            "mine",
            "--input",
            data_str,
            "--k",
            "2",
            "--grid",
            "5",
            "--max-len",
            "2",
            "--velocity",
            "true",
            "--gamma",
            "0.05",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
