//! `trajmine serve --live`: the sharded live fleet.
//!
//! One [`trajserve`] server fronts a fixed shard set; each shard runs
//! its own [`trajstream::StreamMiner`] fed from its own event source
//! and atomically swaps a pre-serialized snapshot into the shard router
//! whenever its certified top-k changes. Shards come from either
//!
//! * `--shards name=source,...` — one feed per shard (an `.events`
//!   log, a dead-reckoning log, `tcp://host:port`, or
//!   `dr+tcp://host:port`), with per-shard checkpoints in
//!   `--checkpoint-dir` when given; or
//! * `--db ROOT` — every `ROOT/shards/<name>/` store directory becomes
//!   a shard, polled for newly committed records, checkpointing next to
//!   its store (`stream.ckpt`).
//!
//! Mining knobs (`--window`, `--k`, `--grid`, `--bbox`, `--delta`, …)
//! are exactly `trajmine stream`'s; server knobs (`--addr`,
//! `--workers`, `--queue`, …) are exactly `trajmine serve`'s.

use crate::args::Args;
use std::error::Error;
use std::time::Duration;

/// Runs the live fleet until a termination signal drains it.
pub fn serve_live(args: &Args) -> Result<(), Box<dyn Error>> {
    let window: u64 = args.get_or("window", 64u64)?;
    if window == 0 {
        return Err("--window must be at least 1".into());
    }
    let (grid, params) = crate::commands::stream_mining_setup(args)?;
    let poll = crate::commands::stream_poll_interval(args)?;
    let growth_rate: f64 = args.get_or("growth-rate", 0.0f64)?;
    if !growth_rate.is_finite() || growth_rate < 0.0 {
        return Err("--growth-rate must be finite and >= 0".into());
    }

    let specs = match (args.get("shards"), args.get("db")) {
        (Some(raw), None) => {
            trajfleet::parse_shard_specs(raw, args.get("checkpoint-dir").map(std::path::Path::new))?
        }
        (None, Some(root)) => trajfleet::discover_db_shards(std::path::Path::new(root))?,
        (Some(_), Some(_)) => return Err("pass either --shards or --db, not both".into()),
        (None, None) => {
            return Err(
                "serve --live needs --shards name=source,... or --db ROOT (with shards/ dirs)"
                    .into(),
            )
        }
    };

    let server_cfg = trajserve::ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers: args.get_or("workers", 2usize)?,
        queue: args.get_or("queue", 64usize)?,
        read_timeout: Duration::from_millis(args.get_or("read-timeout-ms", 5000u64)?),
        write_timeout: Duration::from_millis(args.get_or("write-timeout-ms", 5000u64)?),
        scorer_threads: args.get_or("threads", 1usize)?,
        confirm_threshold: args.get_or("confirm", 0.9f64)?,
        allow_panic_injection: args.get_or("allow-panic-injection", false)?,
        ..trajserve::ServerConfig::default()
    };

    let fleet = trajfleet::Fleet::launch(
        specs,
        trajfleet::FleetConfig {
            grid,
            params,
            window,
            poll,
            growth_rate,
            policy: crate::input::parse_policy(args)?,
            dr: crate::input::dr_config(args)?,
        },
        server_cfg.clone(),
    )?;
    let addr = fleet.local_addr()?;
    eprintln!(
        "trajserve live fleet on http://{addr}: shards [{}] ({} workers, queue {})",
        fleet.shard_names().join(", "),
        server_cfg.workers,
        server_cfg.queue,
    );

    // Same drain story as plain `serve`: a termination signal stops the
    // accept loop; `Fleet::run` then stops every ingester and each one
    // flushes its final checkpoint before the process exits 0.
    trajserve::signal::install_termination_handler();
    let flag = trajserve::signal::termination_flag();
    let handle = fleet.handle();
    std::thread::spawn(move || {
        while !flag.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("termination signal received: draining in-flight requests and shard ingesters");
        handle.shutdown();
    });

    fleet.run()?;
    eprintln!("trajserve stopped cleanly");
    Ok(())
}
