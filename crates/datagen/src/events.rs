//! Replaying workloads as trajectory event streams.
//!
//! Every generator in this crate produces a batch [`Dataset`]; the
//! `trajstream` miner consumes an append-only *event log* instead (see
//! `trajdata::eventlog`). These helpers bridge the two so any workload can
//! be replayed as a stream: [`event_log`] emits arrivals in dataset order,
//! [`event_log_shuffled`] in a seeded random order — streaming order is an
//! experimental variable (it drives window composition and therefore the
//! repair rate), so it is controlled explicitly rather than inherited from
//! generator internals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajdata::eventlog::write_event_log;
use trajdata::Dataset;

/// Serializes `data` as an event log, one arrival per trajectory in
/// dataset order.
pub fn event_log(data: &Dataset) -> String {
    write_event_log(data)
}

/// Serializes `data` as an event log with arrivals in a deterministic
/// seeded shuffle of dataset order (Fisher–Yates).
pub fn event_log_shuffled(data: &Dataset, seed: u64) -> String {
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_10f5);
    for i in (1..order.len()).rev() {
        let j = ((rng.gen::<f64>() * (i + 1) as f64) as usize).min(i);
        order.swap(i, j);
    }
    let shuffled: Dataset = order
        .into_iter()
        .map(|i| data.trajectories()[i].clone())
        .collect();
    write_event_log(&shuffled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe_directly;
    use crate::UniformConfig;
    use trajdata::eventlog::parse_event_log;

    fn sample() -> Dataset {
        let cfg = UniformConfig {
            num_objects: 8,
            snapshots: 6,
            ..UniformConfig::default()
        };
        observe_directly(&cfg.paths(7), 0.02, 7)
    }

    #[test]
    fn ordered_log_replays_the_dataset() {
        let data = sample();
        let events = parse_event_log(&event_log(&data)).unwrap();
        assert_eq!(events.len(), data.len());
        for (orig, ev) in data.iter().zip(&events) {
            assert_eq!(orig, ev);
        }
    }

    #[test]
    fn shuffle_is_a_deterministic_permutation() {
        let data = sample();
        let a = parse_event_log(&event_log_shuffled(&data, 3)).unwrap();
        let b = parse_event_log(&event_log_shuffled(&data, 3)).unwrap();
        assert_eq!(a, b, "same seed, same order");
        let c = parse_event_log(&event_log_shuffled(&data, 4)).unwrap();
        assert_ne!(a, c, "different seed, different order");
        // Same multiset of trajectories either way.
        let mut sa: Vec<String> = a.iter().map(|t| format!("{t:?}")).collect();
        let mut sc: Vec<String> = c.iter().map(|t| format!("{t:?}")).collect();
        sa.sort();
        sc.sort();
        assert_eq!(sa, sc);
    }
}
