//! Bus-fleet workload: the substitute for the paper's real bus data set.
//!
//! §6.1: "we have the locations of 50 buses belonging to 5 routes … It
//! transmits its location reading every minute. We obtain the traces of
//! these 50 buses for 10 weekdays. Thus we have a total number of 500
//! traces."
//!
//! Each route is a closed rectangular loop (with distinct position and
//! size per route) inside the unit square. Buses traverse their route at
//! a noisy nominal speed and occasionally dwell at stops. The loops have
//! corners, which is what makes the workload interesting: straight-line
//! predictors mis-predict at every turn, while the turns recur identically
//! for every bus on the route — exactly the kind of shared motif pattern
//! mining can exploit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajgeo::{Point2, Vec2};

/// Configuration of the bus-fleet generator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BusConfig {
    /// Number of distinct routes (paper: 5).
    pub num_routes: usize,
    /// Buses per route (paper: 10 → 50 buses total).
    pub buses_per_route: usize,
    /// Traced days per bus (paper: 10 → 500 traces total).
    pub days: usize,
    /// Snapshots per trace (paper aligns traces on 100 snapshots).
    pub snapshots: usize,
    /// Nominal distance traveled per snapshot (fraction of the unit
    /// square's side).
    pub speed: f64,
    /// Multiplicative per-snapshot speed jitter (uniform in `±jitter`).
    pub speed_jitter: f64,
    /// Per-snapshot probability of starting a dwell (a bus stop).
    pub dwell_prob: f64,
    /// Maximum dwell duration in snapshots.
    pub dwell_max: usize,
    /// Distance before each corner at which buses decelerate (real buses
    /// brake before turns; this is the pre-turn signature that makes the
    /// turn *predictable from the velocity history*, which the Fig. 3
    /// experiment exploits). `0.0` disables deceleration.
    pub corner_slow_zone: f64,
    /// Speed multiplier inside the slow zone.
    pub corner_slow_factor: f64,
    /// Probability that the bus serves the stop at a corner it crosses
    /// (bus stops sit at the route's corners; a served stop is a dwell of
    /// exactly `corner_stop_dwell` snapshots right after the turn). The
    /// deceleration → stop → restart-in-the-new-direction motif is the
    /// highly repeatable sequence the mining experiments feed on.
    pub corner_stop_prob: f64,
    /// Dwell at a served corner stop, in snapshots (fixed: scheduled stop
    /// service time).
    pub corner_stop_dwell: usize,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            num_routes: 5,
            buses_per_route: 10,
            days: 10,
            snapshots: 100,
            speed: 0.02,
            speed_jitter: 0.15,
            dwell_prob: 0.02,
            dwell_max: 2,
            corner_slow_zone: 0.04,
            corner_slow_factor: 0.4,
            corner_stop_prob: 1.0,
            corner_stop_dwell: 2,
        }
    }
}

/// A closed route: a rectangular loop parameterized by arc length.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    corners: [Point2; 4],
    /// Cumulative arc length at the *end* of each edge.
    cum: [f64; 4],
    total: f64,
}

impl Route {
    /// Builds the loop through four corners (in order).
    fn new(corners: [Point2; 4]) -> Route {
        let mut cum = [0.0; 4];
        let mut total = 0.0;
        for i in 0..4 {
            total += corners[i].distance(corners[(i + 1) % 4]);
            cum[i] = total;
        }
        Route {
            corners,
            cum,
            total,
        }
    }

    /// Total loop length.
    pub fn length(&self) -> f64 {
        self.total
    }

    /// Arc-length distance from `s` (wrapped) forward to the next corner.
    pub fn distance_to_next_corner(&self, s: f64) -> f64 {
        let mut s = s % self.total;
        if s < 0.0 {
            s += self.total;
        }
        for i in 0..4 {
            if s <= self.cum[i] {
                return self.cum[i] - s;
            }
        }
        0.0
    }

    /// Index (0..4) of the edge containing arc length `s` (wrapped).
    pub fn edge_index(&self, s: f64) -> usize {
        let mut s = s % self.total;
        if s < 0.0 {
            s += self.total;
        }
        for i in 0..4 {
            if s <= self.cum[i] {
                return i;
            }
        }
        3
    }

    /// Position at arc length `s` (wrapping).
    pub fn position_at(&self, s: f64) -> Point2 {
        let mut s = s % self.total;
        if s < 0.0 {
            s += self.total;
        }
        let mut prev_cum = 0.0;
        for i in 0..4 {
            if s <= self.cum[i] {
                let a = self.corners[i];
                let b = self.corners[(i + 1) % 4];
                let edge_len = self.cum[i] - prev_cum;
                let frac = if edge_len > 0.0 {
                    (s - prev_cum) / edge_len
                } else {
                    0.0
                };
                return a.lerp(b, frac);
            }
            prev_cum = self.cum[i];
        }
        self.corners[0]
    }

    /// The four corner points.
    pub fn corners(&self) -> &[Point2; 4] {
        &self.corners
    }
}

impl BusConfig {
    /// The routes, derived deterministically from `seed`: rectangles with
    /// seed-dependent centers and extents, kept inside the unit square.
    pub fn routes(&self, seed: u64) -> Vec<Route> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb005_b005);
        (0..self.num_routes)
            .map(|_| {
                let cx = rng.gen_range(0.25..0.75);
                let cy = rng.gen_range(0.25..0.75);
                // Perimeters are kept short enough that a default-length
                // trace (100 snapshots) completes at least one full loop,
                // so every route motif appears in every trace.
                let hw = rng.gen_range(0.08..0.15f64).min(cx - 0.02).min(0.98 - cx);
                let hh = rng.gen_range(0.08..0.15f64).min(cy - 0.02).min(0.98 - cy);
                let c = Point2::new(cx, cy);
                Route::new([
                    c + Vec2::new(-hw, -hh),
                    c + Vec2::new(hw, -hh),
                    c + Vec2::new(hw, hh),
                    c + Vec2::new(-hw, hh),
                ])
            })
            .collect()
    }

    /// Ground-truth paths: one per (route, bus, day), i.e.
    /// `num_routes × buses_per_route × days` traces of `snapshots` points.
    /// Traces are grouped route-major, so a train/test split keeps all
    /// routes represented on both sides only if done with care — use
    /// [`BusConfig::paths_interleaved`] for round-robin ordering.
    pub fn paths(&self, seed: u64) -> Vec<Vec<Point2>> {
        let routes = self.routes(seed);
        let mut out = Vec::with_capacity(self.num_routes * self.buses_per_route * self.days);
        for (ri, route) in routes.iter().enumerate() {
            for bus in 0..self.buses_per_route {
                for day in 0..self.days {
                    let trace_seed = seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(((ri * 1000 + bus * 10 + day) as u64) << 1);
                    out.push(self.one_trace(route, trace_seed));
                }
            }
        }
        out
    }

    /// Like [`BusConfig::paths`], but round-robin across routes so any
    /// prefix/suffix split is route-balanced (the Fig. 3 experiment trains
    /// on 450 traces and tests on 50).
    pub fn paths_interleaved(&self, seed: u64) -> Vec<Vec<Point2>> {
        let grouped = self.paths(seed);
        let per_route = self.buses_per_route * self.days;
        let mut out = Vec::with_capacity(grouped.len());
        for i in 0..per_route {
            for r in 0..self.num_routes {
                out.push(grouped[r * per_route + i].clone());
            }
        }
        out
    }

    fn one_trace(&self, route: &Route, seed: u64) -> Vec<Point2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = rng.gen::<f64>() * route.length();
        let mut dwell = 0usize;
        let mut prev_edge = route.edge_index(s);
        let mut out = Vec::with_capacity(self.snapshots);
        for _ in 0..self.snapshots {
            out.push(route.position_at(s));
            if dwell > 0 {
                dwell -= 1;
                continue;
            }
            if self.dwell_max > 0 && rng.gen::<f64>() < self.dwell_prob {
                // A mid-edge stop (traffic, lights).
                dwell = rng.gen_range(1..=self.dwell_max);
                continue;
            }
            let jitter = 1.0 + (rng.gen::<f64>() * 2.0 - 1.0) * self.speed_jitter;
            let slow = if self.corner_slow_zone > 0.0
                && route.distance_to_next_corner(s) < self.corner_slow_zone
            {
                self.corner_slow_factor
            } else {
                1.0
            };
            s += self.speed * jitter * slow;
            let edge = route.edge_index(s);
            if edge != prev_edge {
                prev_edge = edge;
                // Crossed a corner: serve the stop there with some
                // probability.
                if self.corner_stop_dwell > 0 && rng.gen::<f64>() < self.corner_stop_prob {
                    dwell = self.corner_stop_dwell;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_shape() {
        let cfg = BusConfig::default();
        let paths = cfg.paths(1);
        assert_eq!(paths.len(), 500);
        assert!(paths.iter().all(|p| p.len() == 100));
    }

    #[test]
    fn paths_stay_inside_unit_square() {
        let cfg = BusConfig::default();
        for path in cfg.paths(3).iter().take(50) {
            for p in path {
                assert!(p.x >= 0.0 && p.x <= 1.0 && p.y >= 0.0 && p.y <= 1.0);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = BusConfig {
            days: 1,
            buses_per_route: 2,
            ..BusConfig::default()
        };
        assert_eq!(cfg.paths(5), cfg.paths(5));
        assert_ne!(cfg.paths(5), cfg.paths(6));
    }

    #[test]
    fn corner_stops_create_dwells_after_turns() {
        let cfg = BusConfig {
            corner_stop_prob: 1.0,
            corner_stop_dwell: 2,
            dwell_prob: 0.0,
            speed_jitter: 0.0,
            num_routes: 1,
            buses_per_route: 1,
            days: 1,
            snapshots: 200,
            ..BusConfig::default()
        };
        let path = &cfg.paths(9)[0];
        // With stops served at every corner, there must be stationary
        // snapshots (consecutive identical positions).
        let stationary = path
            .windows(2)
            .filter(|w| w[0].distance(w[1]) < 1e-12)
            .count();
        assert!(stationary >= 4, "expected corner dwells: {stationary}");
    }

    #[test]
    fn route_parameterization_wraps() {
        let cfg = BusConfig::default();
        let route = &cfg.routes(2)[0];
        let l = route.length();
        assert!(l > 0.5, "perimeter of a reasonable rectangle");
        let p0 = route.position_at(0.0);
        assert!(p0.distance(route.position_at(l)) < 1e-9, "wraps at length");
        assert!(p0.distance(route.position_at(-l)) < 1e-9, "negative wraps");
    }

    #[test]
    fn buses_on_same_route_share_the_loop() {
        let cfg = BusConfig {
            num_routes: 1,
            buses_per_route: 3,
            days: 1,
            ..BusConfig::default()
        };
        let route = &cfg.routes(4)[0];
        for path in cfg.paths(4) {
            for p in &path {
                // Every point lies on the rectangle boundary: distance to
                // the loop is ~0. Check via min distance over dense
                // arc-length samples.
                let on_loop = (0..400)
                    .map(|i| route.position_at(i as f64 / 400.0 * route.length()))
                    .any(|q| q.distance(*p) < 0.02);
                assert!(on_loop, "point {p:?} off route");
            }
        }
    }

    #[test]
    fn interleaved_split_is_route_balanced() {
        let cfg = BusConfig::default();
        let paths = cfg.paths_interleaved(1);
        assert_eq!(paths.len(), 500);
        // First 5 paths come from 5 different routes: their bounding boxes
        // differ (probability of coincidence across seeds ~ 0).
        let firsts: Vec<Point2> = paths.iter().take(5).map(|p| p[0]).collect();
        let distinct = firsts
            .iter()
            .enumerate()
            .all(|(i, a)| firsts.iter().skip(i + 1).all(|b| a.distance(*b) > 1e-6));
        assert!(distinct);
    }

    #[test]
    fn dwell_zero_never_stops() {
        let cfg = BusConfig {
            dwell_prob: 0.0,
            speed_jitter: 0.0,
            corner_stop_prob: 0.0,
            num_routes: 1,
            buses_per_route: 1,
            days: 1,
            ..BusConfig::default()
        };
        let path = &cfg.paths(7)[0];
        // Constant speed, no dwell: consecutive points are ~speed apart
        // (a bit less across corners).
        for w in path.windows(2) {
            let d = w[0].distance(w[1]);
            assert!(d <= cfg.speed + 1e-9, "step {d} exceeds speed");
            assert!(d > 0.0, "bus must keep moving");
        }
    }
}
