//! Dead-reckoning feed generator: synthetic `trajfeed-dr v1` logs.
//!
//! The other generators emit finished snapshot trajectories; real
//! vehicle feeds do not. They transmit GTFS-realtime-style messages — a
//! trip's route *shape* plus per-vehicle odometer reports at irregular
//! times — and the server reconstructs §3.1 imprecise trajectories from
//! them (see `trajfeed::dr`). This generator produces that raw message
//! stream, so the whole reconstruction path can be exercised end to
//! end: datagen a DR log → feed it through a file or socket feed → mine
//! the reconstructed window.
//!
//! A fleet of `routes` trips, each with a random polyline shape and
//! `vehicles_per_route` vehicles, reports odometer positions at jittered
//! intervals. Reports from all vehicles interleave in time order — the
//! asynchronous-arrival property §3.2 synchronization exists to fix.
//! With a `geo_origin` the same planar shapes are emitted as WGS84
//! lat/lon (inverse of the local equirectangular projection the decoder
//! applies), producing the geodetic variant of the log.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajfeed::dr::{append_end, append_report, append_shape, dr_header};
use trajgeo::{GeoProjection, Point2};

/// Parameters of the synthetic dead-reckoning fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrFeedConfig {
    /// Distinct trips, each with its own route shape.
    pub routes: usize,
    /// Vehicles running each trip.
    pub vehicles_per_route: usize,
    /// Odometer reports per vehicle (>= 2).
    pub reports_per_vehicle: usize,
    /// Vertices per route shape (>= 2).
    pub shape_vertices: usize,
    /// Coordinate span of the fleet's operating area: shapes live in
    /// `[0, extent]²` (planar units, or meters in geo mode).
    pub extent: f64,
    /// Fraction of its route a vehicle covers over its report horizon
    /// (1.0 = exactly the whole shape).
    pub pace: f64,
    /// Fractional timing jitter on report intervals (0 = a perfect
    /// once-per-unit-time reporter, i.e. reports already on the lattice).
    pub jitter: f64,
    /// Emit geodetic `lat lon` shapes anchored at this origin instead of
    /// planar coordinates; `extent` is then meters.
    pub geo_origin: Option<(f64, f64)>,
}

impl Default for DrFeedConfig {
    fn default() -> DrFeedConfig {
        DrFeedConfig {
            routes: 3,
            vehicles_per_route: 4,
            reports_per_vehicle: 12,
            shape_vertices: 5,
            extent: 1.0,
            pace: 1.0,
            jitter: 0.25,
            geo_origin: None,
        }
    }
}

/// Generates a complete `trajfeed-dr v1` log (terminated by `# eof`),
/// deterministically from `seed`.
pub fn dr_log(cfg: &DrFeedConfig, seed: u64) -> String {
    let routes = cfg.routes.max(1);
    let vehicles = cfg.vehicles_per_route.max(1);
    let reports = cfg.reports_per_vehicle.max(2);
    let vertices = cfg.shape_vertices.max(2);
    let proj = cfg
        .geo_origin
        .map(|(lat0, lon0)| GeoProjection::new(lat0, lon0).expect("usable geo origin"));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd47f_eed5);

    let mut out = dr_header(proj.as_ref().map(|p| p.origin()));

    // Route shapes: a random walk across the operating area, biased to
    // keep moving (repeated motifs come from many vehicles sharing one
    // shape, like the bus workload).
    let mut shapes: Vec<(String, Vec<Point2>, f64)> = Vec::with_capacity(routes);
    for r in 0..routes {
        let mut pts = Vec::with_capacity(vertices);
        let mut p = Point2::new(rng.gen::<f64>() * cfg.extent, rng.gen::<f64>() * cfg.extent);
        pts.push(p);
        let step = cfg.extent / vertices as f64;
        for _ in 1..vertices {
            let q = Point2::new(
                (p.x + (rng.gen::<f64>() * 2.0 - 0.5) * step).clamp(0.0, cfg.extent),
                (p.y + (rng.gen::<f64>() * 2.0 - 0.5) * step).clamp(0.0, cfg.extent),
            );
            pts.push(q);
            p = q;
        }
        let arc: f64 = pts.windows(2).map(|w| w[0].distance(w[1])).sum();
        let trip = format!("trip{r}");
        let wire: Vec<(f64, f64)> = pts
            .iter()
            .map(|v| match &proj {
                Some(proj) => proj.unproject(*v),
                None => (v.x, v.y),
            })
            .collect();
        append_shape(&mut out, &trip, &wire);
        shapes.push((trip, pts, arc.max(f64::MIN_POSITIVE)));
    }

    // Vehicle report streams: per-vehicle strictly increasing times with
    // jittered spacing, odometers advancing along the shape at a noisy
    // pace. Reports from all vehicles are then interleaved in time order.
    let mut all: Vec<(f64, String, String, f64)> = Vec::new();
    let mut names = Vec::with_capacity(routes * vehicles);
    for (r, (trip, _, arc)) in shapes.iter().enumerate() {
        for v in 0..vehicles {
            let name = format!("veh{r}_{v}");
            let mut t = rng.gen::<f64>() * 2.0; // staggered departures
            let mut odo = 0.0f64;
            let odo_step = cfg.pace * arc / (reports - 1) as f64;
            for i in 0..reports {
                if i > 0 {
                    t += 1.0 + cfg.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
                    odo = (odo + odo_step * (0.6 + 0.8 * rng.gen::<f64>())).min(*arc);
                }
                all.push((t, name.clone(), trip.clone(), odo));
            }
            names.push(name);
        }
    }
    all.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    for (t, vehicle, trip, odo) in &all {
        append_report(&mut out, vehicle, trip, *t, *odo);
    }
    for name in &names {
        append_end(&mut out, name);
    }
    out.push_str("# eof\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use trajfeed::{FeedOptions, SourceSpec};

    fn decode(log: &str, name: &str) -> Vec<trajdata::Trajectory> {
        let dir = std::env::temp_dir().join(format!("datagen-drfeed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, log).unwrap();
        let mut feed =
            trajfeed::open(&SourceSpec::Dr(path.clone()), &FeedOptions::default()).unwrap();
        let out = trajfeed::drain(feed.as_mut(), &AtomicBool::new(false)).unwrap();
        std::fs::remove_file(&path).ok();
        out
    }

    #[test]
    fn planar_log_is_deterministic_and_decodes() {
        let cfg = DrFeedConfig::default();
        let a = dr_log(&cfg, 11);
        let b = dr_log(&cfg, 11);
        assert_eq!(a, b, "same seed, same log");
        assert_ne!(a, dr_log(&cfg, 12), "different seed, different log");

        let trajs = decode(&a, "planar.drlog");
        assert_eq!(trajs.len(), cfg.routes * cfg.vehicles_per_route);
        for t in &trajs {
            assert!(t.len() >= 2, "reconstructed trajectory has a window");
            for sp in t.points() {
                assert!((0.0..=cfg.extent).contains(&sp.mean.x));
                assert!((0.0..=cfg.extent).contains(&sp.mean.y));
            }
        }
    }

    #[test]
    fn geo_variant_projects_back_into_the_operating_area() {
        let cfg = DrFeedConfig {
            extent: 2000.0,
            geo_origin: Some((47.6062, -122.3321)),
            ..DrFeedConfig::default()
        };
        let log = dr_log(&cfg, 5);
        assert!(log.lines().nth(1).unwrap().starts_with("geo "));
        let trajs = decode(&log, "geo.drlog");
        assert_eq!(trajs.len(), cfg.routes * cfg.vehicles_per_route);
        // Decoded means are planar meters within the extent (up to
        // projection round-trip error, far below a meter at city scale).
        for t in &trajs {
            for sp in t.points() {
                assert!((-1.0..=cfg.extent + 1.0).contains(&sp.mean.x), "{}", sp.mean.x);
                assert!((-1.0..=cfg.extent + 1.0).contains(&sp.mean.y), "{}", sp.mean.y);
            }
        }
    }

    #[test]
    fn per_vehicle_report_times_strictly_increase() {
        let log = dr_log(&DrFeedConfig::default(), 3);
        let mut last: std::collections::HashMap<String, f64> = Default::default();
        for line in log.lines().filter(|l| l.starts_with("dr ")) {
            let parts: Vec<&str> = line.split_whitespace().collect();
            let t: f64 = parts[3].parse().unwrap();
            if let Some(prev) = last.insert(parts[1].to_string(), t) {
                assert!(t > prev, "vehicle {} times must strictly increase", parts[1]);
            }
        }
    }
}
