//! Posture-sequence workload: a stand-in for the paper's second real data
//! set ("a human posture data set", §6.1, whose results the paper omits
//! for space).
//!
//! Postures are modeled as archetype points in a 2-D feature space (e.g.
//! the first two components of a pose embedding). A subject cycles through
//! the archetypes in a fixed order — stand → walk → run → … — dwelling a
//! random number of snapshots at each and moving with noise, so the same
//! sequential motif recurs across subjects with imprecision.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajgeo::{BBox, Point2, Vec2};

/// Configuration of the posture-sequence generator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PostureConfig {
    /// Number of subjects (trajectories).
    pub num_subjects: usize,
    /// Snapshots per subject.
    pub snapshots: usize,
    /// Number of posture archetypes, laid out on a circle in the unit
    /// square.
    pub num_postures: usize,
    /// Mean dwell (in snapshots) at each posture.
    pub dwell_mean: usize,
    /// Positional noise around the current archetype.
    pub noise: f64,
}

impl Default for PostureConfig {
    fn default() -> Self {
        PostureConfig {
            num_subjects: 50,
            snapshots: 80,
            num_postures: 6,
            dwell_mean: 4,
            noise: 0.02,
        }
    }
}

impl PostureConfig {
    /// The archetype feature points, on a circle of radius 0.35 around the
    /// center of the unit square.
    pub fn archetypes(&self) -> Vec<Point2> {
        let c = Point2::new(0.5, 0.5);
        (0..self.num_postures)
            .map(|i| {
                let theta = std::f64::consts::TAU * i as f64 / self.num_postures as f64;
                c + Vec2::from_polar(0.35, theta)
            })
            .collect()
    }

    /// Generates the ground-truth feature paths.
    pub fn paths(&self, seed: u64) -> Vec<Vec<Point2>> {
        assert!(self.num_postures >= 1, "need at least one posture");
        let bbox = BBox::unit();
        let archetypes = self.archetypes();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9057_0835);
        (0..self.num_subjects)
            .map(|_| {
                let mut current = rng.gen_range(0..self.num_postures);
                let mut dwell = self.sample_dwell(&mut rng);
                let mut out = Vec::with_capacity(self.snapshots);
                for _ in 0..self.snapshots {
                    let base = archetypes[current];
                    let jittered = base
                        + Vec2::new(
                            (rng.gen::<f64>() - 0.5) * 2.0 * self.noise,
                            (rng.gen::<f64>() - 0.5) * 2.0 * self.noise,
                        );
                    out.push(bbox.clamp(jittered));
                    if dwell == 0 {
                        current = (current + 1) % self.num_postures;
                        dwell = self.sample_dwell(&mut rng);
                    } else {
                        dwell -= 1;
                    }
                }
                out
            })
            .collect()
    }

    fn sample_dwell<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        if self.dwell_mean <= 1 {
            return 1;
        }
        rng.gen_range(1..=2 * self.dwell_mean - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let cfg = PostureConfig {
            num_subjects: 3,
            snapshots: 17,
            ..PostureConfig::default()
        };
        let paths = cfg.paths(1);
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.len() == 17));
    }

    #[test]
    fn positions_cluster_near_archetypes() {
        let cfg = PostureConfig::default();
        let archetypes = cfg.archetypes();
        for path in cfg.paths(2).iter().take(10) {
            for p in path {
                let nearest = archetypes
                    .iter()
                    .map(|a| a.distance(*p))
                    .fold(f64::INFINITY, f64::min);
                assert!(nearest <= cfg.noise * 1.5 + 1e-9, "point {p:?} far");
            }
        }
    }

    #[test]
    fn cycles_in_fixed_order() {
        let cfg = PostureConfig {
            num_subjects: 1,
            snapshots: 100,
            noise: 0.0,
            ..PostureConfig::default()
        };
        let archetypes = cfg.archetypes();
        let path = &cfg.paths(3)[0];
        // Map each point to its archetype index; transitions must be +1
        // modulo num_postures.
        let indices: Vec<usize> = path
            .iter()
            .map(|p| {
                archetypes
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.distance(*p).partial_cmp(&b.1.distance(*p)).unwrap())
                    .unwrap()
                    .0
            })
            .collect();
        for w in indices.windows(2) {
            assert!(
                w[1] == w[0] || w[1] == (w[0] + 1) % cfg.num_postures,
                "illegal transition {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn archetypes_inside_unit_square() {
        for a in PostureConfig::default().archetypes() {
            assert!(a.x >= 0.0 && a.x <= 1.0 && a.y >= 0.0 && a.y <= 1.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PostureConfig::default();
        assert_eq!(cfg.paths(4), cfg.paths(4));
    }
}
