//! Street-grid workload: the §1 location-based-commerce scenario.
//!
//! "In location-based commerce advertisement … finding common moving
//! patterns of mobile devices is valuable for inferring potential movement
//! of mobile device users." Pedestrians move along a Manhattan street
//! grid: between intersections they walk straight; at each intersection
//! they continue, turn, or reverse with configurable probabilities. A
//! fraction of the population are *commuters* who follow one of a few
//! fixed intersection-to-intersection routes (the recurring motifs worth
//! mining); the rest wander.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajgeo::{Point2, Vec2};

/// Configuration of the street-grid generator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StreetConfig {
    /// Streets per axis (the city is `blocks × blocks` intersections on
    /// the unit square).
    pub blocks: u32,
    /// Number of pedestrians.
    pub num_walkers: usize,
    /// Snapshots per walker.
    pub snapshots: usize,
    /// Walking distance per snapshot.
    pub speed: f64,
    /// Fraction of walkers that follow a shared commuter route.
    pub commuter_fraction: f64,
    /// Number of distinct commuter routes.
    pub num_routes: usize,
    /// Probability of turning (left or right) at an intersection for
    /// non-commuters; going straight takes most of the remainder.
    pub turn_prob: f64,
}

impl Default for StreetConfig {
    fn default() -> Self {
        StreetConfig {
            blocks: 8,
            num_walkers: 80,
            snapshots: 80,
            speed: 0.025,
            commuter_fraction: 0.6,
            num_routes: 3,
            turn_prob: 0.3,
        }
    }
}

/// A heading along the street grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Heading {
    East,
    North,
    West,
    South,
}

impl Heading {
    fn vec(self) -> Vec2 {
        match self {
            Heading::East => Vec2::new(1.0, 0.0),
            Heading::North => Vec2::new(0.0, 1.0),
            Heading::West => Vec2::new(-1.0, 0.0),
            Heading::South => Vec2::new(0.0, -1.0),
        }
    }

    fn left(self) -> Heading {
        match self {
            Heading::East => Heading::North,
            Heading::North => Heading::West,
            Heading::West => Heading::South,
            Heading::South => Heading::East,
        }
    }

    fn right(self) -> Heading {
        self.left().left().left()
    }
}

impl StreetConfig {
    /// Spacing between adjacent streets.
    fn block_size(&self) -> f64 {
        1.0 / self.blocks as f64
    }

    /// Generates the ground-truth paths. Walkers snap to the street grid:
    /// positions always lie on a line `x = i·b` or `y = j·b`.
    pub fn paths(&self, seed: u64) -> Vec<Vec<Point2>> {
        assert!(self.blocks >= 2, "need at least a 2x2 street grid");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0057_ee75);
        // Commuter routes: a fixed start intersection and a fixed turn
        // program (sequence of intersection decisions), shared verbatim by
        // every commuter on the route.
        let routes: Vec<(u32, u32, Heading, Vec<u8>)> = (0..self.num_routes)
            .map(|_| {
                let ix = rng.gen_range(1..self.blocks - 1);
                let iy = rng.gen_range(1..self.blocks - 1);
                let h = [Heading::East, Heading::North, Heading::West, Heading::South]
                    [rng.gen_range(0..4usize)];
                let program: Vec<u8> = (0..64).map(|_| rng.gen_range(0..3u8)).collect();
                (ix, iy, h, program)
            })
            .collect();

        (0..self.num_walkers)
            .map(|w| {
                let commuter = (w as f64 / self.num_walkers.max(1) as f64) < self.commuter_fraction;
                if commuter && !routes.is_empty() {
                    let route = &routes[w % routes.len()];
                    self.walk_route(route, &mut rng)
                } else {
                    self.walk_random(&mut rng)
                }
            })
            .collect()
    }

    /// One commuter trace: follows the route's fixed turn program with a
    /// small random start offset along the first street.
    fn walk_route(
        &self,
        (ix, iy, start_heading, program): &(u32, u32, Heading, Vec<u8>),
        rng: &mut StdRng,
    ) -> Vec<Point2> {
        let b = self.block_size();
        let mut pos = Point2::new(*ix as f64 * b, *iy as f64 * b);
        let mut heading = *start_heading;
        let mut program_idx = 0usize;
        // Small start offset so commuters are not snapshot-synchronized.
        let offset = rng.gen::<f64>() * b * 0.5;
        pos = self.step_along(pos, heading, offset).0;
        let mut out = Vec::with_capacity(self.snapshots);
        for _ in 0..self.snapshots {
            out.push(pos);
            let (next, crossed) = self.step_along(pos, heading, self.speed);
            pos = next;
            if crossed {
                heading = match program[program_idx % program.len()] {
                    0 => heading,
                    1 => heading.left(),
                    _ => heading.right(),
                };
                program_idx += 1;
                heading = self.keep_inside(pos, heading);
            }
        }
        out
    }

    /// One wanderer trace: random decisions at each intersection.
    fn walk_random(&self, rng: &mut StdRng) -> Vec<Point2> {
        let b = self.block_size();
        let mut pos = Point2::new(
            rng.gen_range(1..self.blocks) as f64 * b,
            rng.gen_range(1..self.blocks) as f64 * b,
        );
        let mut heading = [Heading::East, Heading::North, Heading::West, Heading::South]
            [rng.gen_range(0..4usize)];
        heading = self.keep_inside(pos, heading);
        let mut out = Vec::with_capacity(self.snapshots);
        for _ in 0..self.snapshots {
            out.push(pos);
            let (next, crossed) = self.step_along(pos, heading, self.speed);
            pos = next;
            if crossed {
                let r: f64 = rng.gen();
                heading = if r < self.turn_prob / 2.0 {
                    heading.left()
                } else if r < self.turn_prob {
                    heading.right()
                } else {
                    heading
                };
                heading = self.keep_inside(pos, heading);
            }
        }
        out
    }

    /// Advances `dist` along `heading`, stopping the turn decision at the
    /// next intersection: returns the new position and whether an
    /// intersection was reached during the step (movement pauses there —
    /// pedestrians wait for the light, conveniently keeping positions on
    /// the grid).
    fn step_along(&self, pos: Point2, heading: Heading, dist: f64) -> (Point2, bool) {
        let b = self.block_size();
        let dir = heading.vec();
        // Distance to the next intersection along the heading.
        let along = pos.x * dir.x.abs() + pos.y * dir.y.abs();
        let signed = if dir.x + dir.y > 0.0 {
            // Moving in the + direction: next multiple of b above.
            let next = ((along / b).floor() + 1.0) * b;
            next - along
        } else {
            let next = ((along / b).ceil() - 1.0) * b;
            along - next
        };
        // Numerical guard: if we are (essentially) on an intersection,
        // the full block length is ahead.
        let to_next = if signed < 1e-9 { b } else { signed };
        if dist + 1e-12 >= to_next {
            (pos + dir * to_next, true)
        } else {
            (pos + dir * dist, false)
        }
    }

    /// Reflects a heading that would leave the city.
    fn keep_inside(&self, pos: Point2, heading: Heading) -> Heading {
        let eps = 1e-9;
        match heading {
            Heading::East if pos.x >= 1.0 - eps => Heading::West,
            Heading::West if pos.x <= eps => Heading::East,
            Heading::North if pos.y >= 1.0 - eps => Heading::South,
            Heading::South if pos.y <= eps => Heading::North,
            h => h,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let cfg = StreetConfig {
            num_walkers: 12,
            snapshots: 30,
            ..StreetConfig::default()
        };
        let paths = cfg.paths(1);
        assert_eq!(paths.len(), 12);
        assert!(paths.iter().all(|p| p.len() == 30));
    }

    #[test]
    fn walkers_stay_on_streets() {
        let cfg = StreetConfig::default();
        let b = cfg.block_size();
        for path in cfg.paths(2).iter().take(20) {
            for p in path {
                let on_vertical = (p.x / b - (p.x / b).round()).abs() < 1e-6;
                let on_horizontal = (p.y / b - (p.y / b).round()).abs() < 1e-6;
                assert!(
                    on_vertical || on_horizontal,
                    "({}, {}) is off-street",
                    p.x,
                    p.y
                );
            }
        }
    }

    #[test]
    fn walkers_stay_inside_the_city() {
        let cfg = StreetConfig::default();
        for path in cfg.paths(3).iter().take(20) {
            for p in path {
                assert!(p.x >= -1e-9 && p.x <= 1.0 + 1e-9);
                assert!(p.y >= -1e-9 && p.y <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn commuters_on_same_route_share_their_trace_shape() {
        let cfg = StreetConfig {
            num_walkers: 10,
            commuter_fraction: 1.0,
            num_routes: 1,
            snapshots: 40,
            ..StreetConfig::default()
        };
        let paths = cfg.paths(4);
        // All walkers follow the same route program; after alignment their
        // visited street segments overlap heavily. Compare visited
        // intersection sets.
        let visited = |path: &Vec<Point2>| -> std::collections::BTreeSet<(i64, i64)> {
            let b = cfg.block_size();
            path.iter()
                .map(|p| {
                    (
                        ((p.x / b) * 2.0).round() as i64,
                        ((p.y / b) * 2.0).round() as i64,
                    )
                })
                .collect()
        };
        let sets: Vec<_> = paths.iter().map(visited).collect();
        for s in &sets[1..] {
            let inter = sets[0].intersection(s).count();
            let frac = inter as f64 / sets[0].len().max(1) as f64;
            assert!(frac > 0.5, "route overlap too small: {frac}");
        }
    }

    #[test]
    fn movement_makes_progress() {
        let cfg = StreetConfig::default();
        for path in cfg.paths(5).iter().take(10) {
            let total: f64 = path.windows(2).map(|w| w[0].distance(w[1])).sum();
            assert!(total > 0.5, "walker barely moved: {total}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = StreetConfig {
            num_walkers: 6,
            snapshots: 20,
            ..StreetConfig::default()
        };
        assert_eq!(cfg.paths(9), cfg.paths(9));
        assert_ne!(cfg.paths(9), cfg.paths(10));
    }

    #[test]
    #[should_panic(expected = "2x2 street grid")]
    fn rejects_degenerate_city() {
        StreetConfig {
            blocks: 1,
            ..StreetConfig::default()
        }
        .paths(0);
    }
}
