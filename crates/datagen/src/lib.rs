//! Synthetic workload generators for the TrajPattern reproduction.
//!
//! The paper evaluates on two real data sets (bus GPS traces, human
//! postures) and two synthetic families (moving objects in the style of
//! the TPR-tree work \[9\], and a generator seeded from the ZebraNet
//! traces \[16\]). None of the real data is publicly available, so this
//! crate rebuilds each workload as a parameterized generator that
//! preserves the property the experiments depend on (see DESIGN.md §3):
//!
//! - [`bus`]: a fleet on a handful of fixed routes — a few strongly
//!   repeated movement motifs shared by many objects (the §6.1
//!   effectiveness workload).
//! - [`zebranet`]: groups of animals moving together with individual
//!   noise and occasional departures (the §6.2 scalability workload).
//! - [`uniform`]: independent objects with piecewise-constant random
//!   velocities (the \[9\]-style generator).
//! - [`streets`]: pedestrians on a Manhattan street grid — the §1
//!   location-based-commerce scenario (commuter routes as mineable
//!   motifs).
//! - [`posture`]: cyclic activity sequences standing in for the second
//!   real data set.
//! - [`drfeed`]: raw dead-reckoning message logs (`trajfeed-dr v1`,
//!   planar or geodetic) — the un-reconstructed vehicle-feed input the
//!   feed spine's §3.1/§3.2 adapter consumes.
//!
//! All generators are deterministic functions of an explicit `u64` seed.
//! Each produces ground-truth paths (`Vec<Vec<Point2>>`); helpers convert
//! them into imprecise [`trajdata::Dataset`]s either by direct observation noise
//! ([`observe_directly`]) or through the full dead-reckoning reporting
//! pipeline ([`observe_via_reporting`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod corrupt;
pub mod drfeed;
pub mod events;
pub mod observe;
pub mod posture;
pub mod streets;
pub mod uniform;
pub mod zebranet;

pub use bus::BusConfig;
pub use corrupt::{
    corrupt_csv_structurally, CorruptionConfig, CorruptionConfigError, StructuralDefect,
};
pub use drfeed::{dr_log, DrFeedConfig};
pub use events::{event_log, event_log_shuffled};
pub use observe::{observe_directly, observe_via_reporting};
pub use posture::PostureConfig;
pub use streets::StreetConfig;
pub use uniform::UniformConfig;
pub use zebranet::ZebraConfig;
