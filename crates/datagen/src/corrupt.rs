//! Trace corruption utilities: sensor dropouts and outlier injection.
//!
//! Real tracking deployments lose samples (dead sensor batteries, §1's
//! "sensors are limited in power and may fail from time to time") and
//! produce the occasional wild reading (GPS multipath). These helpers
//! corrupt ground-truth paths *before* observation so robustness can be
//! tested end-to-end; the integration suite verifies that mining degrades
//! gracefully rather than failing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajgeo::stats::sample_std_normal;
use trajgeo::{BBox, Point2};

/// Configuration for trace corruption.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CorruptionConfig {
    /// Probability that each snapshot's reading is lost. Lost readings are
    /// repaired by linear interpolation from the surviving neighbours
    /// (§3.2's synchronization-point interpolation).
    pub dropout_prob: f64,
    /// Probability that a surviving reading is an outlier.
    pub outlier_prob: f64,
    /// Standard deviation of the outlier displacement.
    pub outlier_sigma: f64,
    /// Space to confine outliers to.
    pub bbox: BBox,
}

impl Default for CorruptionConfig {
    fn default() -> Self {
        CorruptionConfig {
            dropout_prob: 0.1,
            outlier_prob: 0.02,
            outlier_sigma: 0.2,
            bbox: BBox::unit(),
        }
    }
}

impl CorruptionConfig {
    /// Validates the probabilities.
    pub fn is_valid(&self) -> bool {
        (0.0..1.0).contains(&self.dropout_prob)
            && (0.0..1.0).contains(&self.outlier_prob)
            && self.outlier_sigma.is_finite()
            && self.outlier_sigma >= 0.0
    }

    /// Corrupts every path: drops readings (repaired by interpolation) and
    /// displaces survivors into outliers. Path lengths are preserved; the
    /// first and last snapshot of each path never drop (so interpolation
    /// is always anchored).
    pub fn corrupt(&self, paths: &[Vec<Point2>], seed: u64) -> Vec<Vec<Point2>> {
        assert!(self.is_valid(), "invalid corruption config");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0_44u64);
        paths
            .iter()
            .map(|p| self.corrupt_one(p, &mut rng))
            .collect()
    }

    fn corrupt_one(&self, path: &[Point2], rng: &mut StdRng) -> Vec<Point2> {
        let n = path.len();
        if n == 0 {
            return Vec::new();
        }
        // 1. Decide dropouts (endpoints always survive).
        let dropped: Vec<bool> = (0..n)
            .map(|i| i != 0 && i != n - 1 && rng.gen::<f64>() < self.dropout_prob)
            .collect();
        // 2. Repair dropouts by linear interpolation between survivors.
        let mut out = path.to_vec();
        let mut i = 0usize;
        while i < n {
            if !dropped[i] {
                i += 1;
                continue;
            }
            // Find the gap [lo, hi] of dropped snapshots; lo-1 and hi+1
            // survive by construction.
            let lo = i;
            let mut hi = i;
            while hi + 1 < n && dropped[hi + 1] {
                hi += 1;
            }
            let a = out[lo - 1];
            let b = path[hi + 1];
            let span = (hi + 2 - lo) as f64;
            for (off, slot) in (lo..=hi).enumerate() {
                out[slot] = a.lerp(b, (off + 1) as f64 / span);
            }
            i = hi + 1;
        }
        // 3. Outliers on surviving readings.
        for (i, slot) in out.iter_mut().enumerate() {
            if !dropped[i] && rng.gen::<f64>() < self.outlier_prob {
                let jump = trajgeo::Vec2::new(
                    self.outlier_sigma * sample_std_normal(rng),
                    self.outlier_sigma * sample_std_normal(rng),
                );
                *slot = self.bbox.clamp(*slot + jump);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| Point2::new(i as f64 / n as f64, 0.5))
            .collect()
    }

    #[test]
    fn preserves_shape_and_endpoints() {
        let cfg = CorruptionConfig::default();
        let paths = vec![line(50), line(30)];
        let out = cfg.corrupt(&paths, 1);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 50);
        assert_eq!(out[1].len(), 30);
    }

    #[test]
    fn zero_rates_are_identity() {
        let cfg = CorruptionConfig {
            dropout_prob: 0.0,
            outlier_prob: 0.0,
            ..CorruptionConfig::default()
        };
        let paths = vec![line(20)];
        assert_eq!(cfg.corrupt(&paths, 2), paths);
    }

    #[test]
    fn dropouts_interpolate_on_straight_lines() {
        // On a straight line, interpolation repairs dropouts exactly, so
        // without outliers the corrupted path equals the original.
        let cfg = CorruptionConfig {
            dropout_prob: 0.5,
            outlier_prob: 0.0,
            ..CorruptionConfig::default()
        };
        let paths = vec![line(40)];
        let out = cfg.corrupt(&paths, 3);
        for (a, b) in out[0].iter().zip(&paths[0]) {
            assert!(a.distance(*b) < 1e-9, "straight-line repair must be exact");
        }
    }

    #[test]
    fn outliers_move_points_but_stay_in_bbox() {
        let cfg = CorruptionConfig {
            dropout_prob: 0.0,
            outlier_prob: 0.5,
            outlier_sigma: 0.3,
            bbox: BBox::unit(),
        };
        let paths = vec![line(100)];
        let out = cfg.corrupt(&paths, 4);
        let moved = out[0]
            .iter()
            .zip(&paths[0])
            .filter(|(a, b)| a.distance(**b) > 1e-12)
            .count();
        assert!(moved > 20, "expected many outliers: {moved}");
        for p in &out[0] {
            assert!(cfg.bbox.contains(*p));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CorruptionConfig::default();
        let paths = vec![line(25)];
        assert_eq!(cfg.corrupt(&paths, 9), cfg.corrupt(&paths, 9));
        assert_ne!(cfg.corrupt(&paths, 9), cfg.corrupt(&paths, 10));
    }

    #[test]
    #[should_panic(expected = "invalid corruption config")]
    fn rejects_invalid_rates() {
        let cfg = CorruptionConfig {
            dropout_prob: 1.5,
            ..CorruptionConfig::default()
        };
        cfg.corrupt(&[line(5)], 0);
    }

    #[test]
    fn empty_and_singleton_paths_are_fine() {
        let cfg = CorruptionConfig::default();
        let out = cfg.corrupt(&[vec![], vec![Point2::new(0.5, 0.5)]], 7);
        assert!(out[0].is_empty());
        assert_eq!(out[1].len(), 1);
    }
}
