//! Trace corruption utilities: sensor dropouts, outlier injection, and
//! structural file damage.
//!
//! Real tracking deployments lose samples (dead sensor batteries, §1's
//! "sensors are limited in power and may fail from time to time") and
//! produce the occasional wild reading (GPS multipath). These helpers
//! corrupt ground-truth paths *before* observation so robustness can be
//! tested end-to-end; the integration suite verifies that mining degrades
//! gracefully rather than failing.
//!
//! Two layers of damage are modelled:
//!
//! - **Value corruption** ([`CorruptionConfig`]): dropouts and outliers on
//!   in-memory paths, as above.
//! - **Structural corruption** ([`corrupt_csv_structurally`]): damage to a
//!   *serialized* dataset — truncated files, shuffled rows, garbage
//!   fields, NaN injection — exercising the fault-tolerant ingest policies
//!   in `trajdata::csv`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use trajgeo::stats::sample_std_normal;
use trajgeo::{BBox, Point2};

/// Configuration for trace corruption.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CorruptionConfig {
    /// Probability that each snapshot's reading is lost. Lost readings are
    /// repaired by linear interpolation from the surviving neighbours
    /// (§3.2's synchronization-point interpolation).
    pub dropout_prob: f64,
    /// Probability that a surviving reading is an outlier.
    pub outlier_prob: f64,
    /// Standard deviation of the outlier displacement.
    pub outlier_sigma: f64,
    /// Space to confine outliers to.
    pub bbox: BBox,
}

impl Default for CorruptionConfig {
    fn default() -> Self {
        CorruptionConfig {
            dropout_prob: 0.1,
            outlier_prob: 0.02,
            outlier_sigma: 0.2,
            bbox: BBox::unit(),
        }
    }
}

/// Why a [`CorruptionConfig`] is unusable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorruptionConfigError {
    /// A probability field is negative, above 1, or not a number.
    ProbabilityOutOfRange {
        /// Which field (`"dropout_prob"` or `"outlier_prob"`).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `outlier_sigma` is non-positive or non-finite — a zero or negative
    /// displacement scale silently produces no outliers at all, which is
    /// never what a corruption experiment intends.
    NonPositiveSigma {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for CorruptionConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptionConfigError::ProbabilityOutOfRange { field, value } => {
                write!(f, "{field} must be a probability in [0, 1], got {value}")
            }
            CorruptionConfigError::NonPositiveSigma { value } => {
                write!(f, "outlier_sigma must be positive and finite, got {value}")
            }
        }
    }
}

impl std::error::Error for CorruptionConfigError {}

impl CorruptionConfig {
    /// Checks every field, naming the first offender.
    pub fn validate(&self) -> Result<(), CorruptionConfigError> {
        for (field, value) in [
            ("dropout_prob", self.dropout_prob),
            ("outlier_prob", self.outlier_prob),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(CorruptionConfigError::ProbabilityOutOfRange { field, value });
            }
        }
        if !self.outlier_sigma.is_finite() || self.outlier_sigma <= 0.0 {
            return Err(CorruptionConfigError::NonPositiveSigma {
                value: self.outlier_sigma,
            });
        }
        Ok(())
    }

    /// Whether [`validate`](CorruptionConfig::validate) passes.
    pub fn is_valid(&self) -> bool {
        self.validate().is_ok()
    }

    /// Corrupts every path: drops readings (repaired by interpolation) and
    /// displaces survivors into outliers. Path lengths are preserved; the
    /// first and last snapshot of each path never drop (so interpolation
    /// is always anchored). An invalid configuration is a typed error, not
    /// a panic.
    pub fn corrupt(
        &self,
        paths: &[Vec<Point2>],
        seed: u64,
    ) -> Result<Vec<Vec<Point2>>, CorruptionConfigError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0_44u64);
        Ok(paths
            .iter()
            .map(|p| self.corrupt_one(p, &mut rng))
            .collect())
    }

    fn corrupt_one(&self, path: &[Point2], rng: &mut StdRng) -> Vec<Point2> {
        let n = path.len();
        if n == 0 {
            return Vec::new();
        }
        // 1. Decide dropouts (endpoints always survive).
        let dropped: Vec<bool> = (0..n)
            .map(|i| i != 0 && i != n - 1 && rng.gen::<f64>() < self.dropout_prob)
            .collect();
        // 2. Repair dropouts by linear interpolation between survivors.
        let mut out = path.to_vec();
        let mut i = 0usize;
        while i < n {
            if !dropped[i] {
                i += 1;
                continue;
            }
            // Find the gap [lo, hi] of dropped snapshots; lo-1 and hi+1
            // survive by construction.
            let lo = i;
            let mut hi = i;
            while hi + 1 < n && dropped[hi + 1] {
                hi += 1;
            }
            let a = out[lo - 1];
            let b = path[hi + 1];
            let span = (hi + 2 - lo) as f64;
            for (off, slot) in (lo..=hi).enumerate() {
                out[slot] = a.lerp(b, (off + 1) as f64 / span);
            }
            i = hi + 1;
        }
        // 3. Outliers on surviving readings.
        for (i, slot) in out.iter_mut().enumerate() {
            if !dropped[i] && rng.gen::<f64>() < self.outlier_prob {
                let jump = trajgeo::Vec2::new(
                    self.outlier_sigma * sample_std_normal(rng),
                    self.outlier_sigma * sample_std_normal(rng),
                );
                *slot = self.bbox.clamp(*slot + jump);
            }
        }
        out
    }
}

/// One kind of structural damage to a serialized (CSV) dataset.
///
/// These model what actually happens to files in the field — partial
/// writes, concatenation mishaps, encoding bugs — rather than noisy
/// sensor values. Apply with [`corrupt_csv_structurally`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructuralDefect {
    /// Cut the file mid-row (a partial write / interrupted download):
    /// roughly the last fifth of the text is removed, ending mid-line.
    TruncateTail,
    /// Shuffle all data rows (a parallel writer flushing out of order).
    ShuffleRows,
    /// Replace numeric fields on a few rows with non-numeric garbage.
    GarbageFields,
    /// Replace coordinates on a few rows with literal `NaN` — which Rust's
    /// float parser *accepts*, so this exercises value validation rather
    /// than parse errors.
    NanInjection,
    /// Duplicate a few rows in place (an at-least-once delivery replay).
    DuplicateRows,
    /// Remove the header row entirely.
    DropHeader,
}

impl StructuralDefect {
    /// Every defect, for exhaustive matrix tests.
    pub const ALL: [StructuralDefect; 6] = [
        StructuralDefect::TruncateTail,
        StructuralDefect::ShuffleRows,
        StructuralDefect::GarbageFields,
        StructuralDefect::NanInjection,
        StructuralDefect::DuplicateRows,
        StructuralDefect::DropHeader,
    ];
}

/// Applies each defect (in the order given) to CSV `text`, deterministic
/// per `seed`. The input is treated as opaque lines plus a header, so this
/// works on any CSV the `trajdata` codec emits.
pub fn corrupt_csv_structurally(text: &str, defects: &[StructuralDefect], seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57_4c_75u64);
    let mut out = text.to_string();
    for defect in defects {
        out = apply_defect(&out, *defect, &mut rng);
    }
    out
}

fn apply_defect(text: &str, defect: StructuralDefect, rng: &mut StdRng) -> String {
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    match defect {
        StructuralDefect::TruncateTail => {
            let mut cut = text.len() - text.len() / 5;
            // A byte cut can coincidentally leave a parseable final row;
            // a real partial write usually doesn't. Pull the cut back to
            // just before the line's second comma so the surviving
            // fragment can never pass as a five-field record.
            let line_start = text[..cut].rfind('\n').map_or(0, |i| i + 1);
            let line_end = text[cut..].find('\n').map_or(text.len(), |i| cut + i);
            let second_comma = text[line_start..line_end]
                .char_indices()
                .filter(|(_, c)| *c == ',')
                .nth(1)
                .map(|(i, _)| line_start + i);
            if let Some(pos) = second_comma {
                cut = pos;
            }
            return text[..cut].to_string();
        }
        StructuralDefect::ShuffleRows => {
            // Fisher–Yates over the data rows, keeping the header fixed.
            let start = 1.min(lines.len());
            for i in (start + 1..lines.len()).rev() {
                let j = rng.gen_range(start..=i);
                lines.swap(i, j);
            }
        }
        StructuralDefect::GarbageFields => {
            mutate_data_rows(&mut lines, rng, |row, rng| {
                let mut fields: Vec<&str> = row.split(',').collect();
                if !fields.is_empty() {
                    let idx = rng.gen_range(0..fields.len());
                    fields[idx] = "##garbage##";
                }
                fields.join(",")
            });
        }
        StructuralDefect::NanInjection => {
            mutate_data_rows(&mut lines, rng, |row, _| {
                let mut fields: Vec<String> = row.split(',').map(str::to_string).collect();
                // Fields 2 and 3 are x and y in the trajdata schema.
                for f in fields.iter_mut().skip(2).take(2) {
                    *f = "NaN".to_string();
                }
                fields.join(",")
            });
        }
        StructuralDefect::DuplicateRows => {
            let mut i = 1;
            while i < lines.len() {
                if rng.gen::<f64>() < 0.15 {
                    lines.insert(i + 1, lines[i].clone());
                    i += 1; // Skip over the copy so replays don't cascade.
                }
                i += 1;
            }
        }
        StructuralDefect::DropHeader => {
            if !lines.is_empty() {
                lines.remove(0);
            }
        }
    }
    let mut out = lines.join("\n");
    if text.ends_with('\n') {
        out.push('\n');
    }
    out
}

/// Rewrites ~15% of data rows (always at least one when any exist).
fn mutate_data_rows(
    lines: &mut [String],
    rng: &mut StdRng,
    mut mutate: impl FnMut(&str, &mut StdRng) -> String,
) {
    if lines.len() <= 1 {
        return;
    }
    let forced = rng.gen_range(1..lines.len());
    for (i, line) in lines.iter_mut().enumerate().skip(1) {
        if i == forced || rng.gen::<f64>() < 0.15 {
            *line = mutate(line, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| Point2::new(i as f64 / n as f64, 0.5))
            .collect()
    }

    #[test]
    fn preserves_shape_and_endpoints() {
        let cfg = CorruptionConfig::default();
        let paths = vec![line(50), line(30)];
        let out = cfg.corrupt(&paths, 1).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 50);
        assert_eq!(out[1].len(), 30);
    }

    #[test]
    fn zero_rates_are_identity() {
        let cfg = CorruptionConfig {
            dropout_prob: 0.0,
            outlier_prob: 0.0,
            ..CorruptionConfig::default()
        };
        let paths = vec![line(20)];
        assert_eq!(cfg.corrupt(&paths, 2).unwrap(), paths);
    }

    #[test]
    fn dropouts_interpolate_on_straight_lines() {
        // On a straight line, interpolation repairs dropouts exactly, so
        // without outliers the corrupted path equals the original.
        let cfg = CorruptionConfig {
            dropout_prob: 0.5,
            outlier_prob: 0.0,
            ..CorruptionConfig::default()
        };
        let paths = vec![line(40)];
        let out = cfg.corrupt(&paths, 3).unwrap();
        for (a, b) in out[0].iter().zip(&paths[0]) {
            assert!(a.distance(*b) < 1e-9, "straight-line repair must be exact");
        }
    }

    #[test]
    fn outliers_move_points_but_stay_in_bbox() {
        let cfg = CorruptionConfig {
            dropout_prob: 0.0,
            outlier_prob: 0.5,
            outlier_sigma: 0.3,
            bbox: BBox::unit(),
        };
        let paths = vec![line(100)];
        let out = cfg.corrupt(&paths, 4).unwrap();
        let moved = out[0]
            .iter()
            .zip(&paths[0])
            .filter(|(a, b)| a.distance(**b) > 1e-12)
            .count();
        assert!(moved > 20, "expected many outliers: {moved}");
        for p in &out[0] {
            assert!(cfg.bbox.contains(*p));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CorruptionConfig::default();
        let paths = vec![line(25)];
        assert_eq!(
            cfg.corrupt(&paths, 9).unwrap(),
            cfg.corrupt(&paths, 9).unwrap()
        );
        assert_ne!(
            cfg.corrupt(&paths, 9).unwrap(),
            cfg.corrupt(&paths, 10).unwrap()
        );
    }

    #[test]
    fn rejects_invalid_rates_with_typed_error() {
        let bad_prob = CorruptionConfig {
            dropout_prob: 1.5,
            ..CorruptionConfig::default()
        };
        assert_eq!(
            bad_prob.corrupt(&[line(5)], 0).unwrap_err(),
            CorruptionConfigError::ProbabilityOutOfRange {
                field: "dropout_prob",
                value: 1.5,
            }
        );
        let negative = CorruptionConfig {
            outlier_prob: -0.25,
            ..CorruptionConfig::default()
        };
        assert!(matches!(
            negative.validate(),
            Err(CorruptionConfigError::ProbabilityOutOfRange {
                field: "outlier_prob",
                ..
            })
        ));
        let flat = CorruptionConfig {
            outlier_sigma: 0.0,
            ..CorruptionConfig::default()
        };
        assert_eq!(
            flat.validate().unwrap_err(),
            CorruptionConfigError::NonPositiveSigma { value: 0.0 }
        );
        assert!(!flat.is_valid());
        let err = flat.validate().unwrap_err().to_string();
        assert!(err.contains("outlier_sigma"), "unhelpful message: {err}");
        assert!(CorruptionConfig::default().is_valid());
    }

    const CSV: &str = "traj_id,snapshot,x,y,sigma\n\
        0,0,0.1,0.2,0.01\n\
        0,1,0.2,0.2,0.01\n\
        1,0,0.3,0.4,0.01\n\
        1,1,0.4,0.4,0.01\n";

    #[test]
    fn truncate_tail_cuts_mid_line() {
        let out = corrupt_csv_structurally(CSV, &[StructuralDefect::TruncateTail], 1);
        assert!(out.len() < CSV.len());
        assert!(CSV.starts_with(&out));
    }

    #[test]
    fn shuffle_keeps_header_and_row_multiset() {
        let out = corrupt_csv_structurally(CSV, &[StructuralDefect::ShuffleRows], 2);
        let mut orig: Vec<&str> = CSV.lines().skip(1).collect();
        let mut got: Vec<&str> = out.lines().skip(1).collect();
        assert_eq!(out.lines().next(), CSV.lines().next());
        orig.sort_unstable();
        got.sort_unstable();
        assert_eq!(orig, got);
    }

    #[test]
    fn garbage_and_nan_touch_at_least_one_row() {
        let garbage = corrupt_csv_structurally(CSV, &[StructuralDefect::GarbageFields], 3);
        assert!(garbage.contains("##garbage##"));
        let nan = corrupt_csv_structurally(CSV, &[StructuralDefect::NanInjection], 4);
        assert!(nan.contains("NaN,NaN"));
    }

    #[test]
    fn duplicate_rows_only_adds_copies() {
        let out = corrupt_csv_structurally(CSV, &[StructuralDefect::DuplicateRows], 5);
        assert!(out.lines().count() >= CSV.lines().count());
        for l in out.lines() {
            assert!(CSV.lines().any(|o| o == l), "invented row: {l}");
        }
    }

    #[test]
    fn drop_header_removes_first_line() {
        let out = corrupt_csv_structurally(CSV, &[StructuralDefect::DropHeader], 6);
        assert_eq!(out.lines().next(), CSV.lines().nth(1));
    }

    #[test]
    fn structural_corruption_is_deterministic_and_composable() {
        let defects = StructuralDefect::ALL;
        let a = corrupt_csv_structurally(CSV, &defects, 11);
        let b = corrupt_csv_structurally(CSV, &defects, 11);
        assert_eq!(a, b);
        // Empty input never panics.
        for d in StructuralDefect::ALL {
            corrupt_csv_structurally("", &[d], 0);
        }
    }

    #[test]
    fn empty_and_singleton_paths_are_fine() {
        let cfg = CorruptionConfig::default();
        let out = cfg
            .corrupt(&[vec![], vec![Point2::new(0.5, 0.5)]], 7)
            .unwrap();
        assert!(out[0].is_empty());
        assert_eq!(out[1].len(), 1);
    }
}
