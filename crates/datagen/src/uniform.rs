//! Uniform moving-object workload, in the style of the TPR-tree
//! generator \[9\] the paper cites for its first synthetic data set:
//! independent objects with uniformly random starting positions and
//! piecewise-constant velocities that change at random moments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajgeo::{BBox, Point2, Vec2};

/// Configuration of the uniform moving-object generator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UniformConfig {
    /// Number of objects (`S`).
    pub num_objects: usize,
    /// Snapshots per trajectory (`L`).
    pub snapshots: usize,
    /// Maximum speed per snapshot (velocities drawn uniformly from the
    /// disc of this radius).
    pub max_speed: f64,
    /// Per-snapshot probability of drawing a fresh velocity.
    pub change_prob: f64,
}

impl Default for UniformConfig {
    fn default() -> Self {
        UniformConfig {
            num_objects: 100,
            snapshots: 100,
            max_speed: 0.03,
            change_prob: 0.1,
        }
    }
}

impl UniformConfig {
    /// Generates the ground-truth paths, confined to the unit square by
    /// reflection.
    pub fn paths(&self, seed: u64) -> Vec<Vec<Point2>> {
        let bbox = BBox::unit();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0941_f09a);
        (0..self.num_objects)
            .map(|_| {
                let mut pos = Point2::new(rng.gen::<f64>(), rng.gen::<f64>());
                let mut vel = random_velocity(&mut rng, self.max_speed);
                let mut out = Vec::with_capacity(self.snapshots);
                for _ in 0..self.snapshots {
                    out.push(pos);
                    if rng.gen::<f64>() < self.change_prob {
                        vel = random_velocity(&mut rng, self.max_speed);
                    }
                    pos = bbox.reflect(pos + vel);
                }
                out
            })
            .collect()
    }
}

/// Uniform velocity in the disc of radius `max_speed` (rejection-free:
/// radius via sqrt for uniform area density).
fn random_velocity<R: Rng + ?Sized>(rng: &mut R, max_speed: f64) -> Vec2 {
    let r = max_speed * rng.gen::<f64>().sqrt();
    let theta = rng.gen_range(0.0..std::f64::consts::TAU);
    Vec2::from_polar(r, theta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let cfg = UniformConfig {
            num_objects: 7,
            snapshots: 13,
            ..UniformConfig::default()
        };
        let paths = cfg.paths(1);
        assert_eq!(paths.len(), 7);
        assert!(paths.iter().all(|p| p.len() == 13));
    }

    #[test]
    fn stays_in_unit_square_and_respects_speed() {
        let cfg = UniformConfig::default();
        for path in cfg.paths(2).iter().take(20) {
            for w in path.windows(2) {
                assert!(w[1].x >= 0.0 && w[1].x <= 1.0);
                assert!(w[1].y >= 0.0 && w[1].y <= 1.0);
                // Reflection can only shorten the step.
                assert!(w[0].distance(w[1]) <= cfg.max_speed + 1e-9);
            }
        }
    }

    #[test]
    fn velocity_changes_occur() {
        let cfg = UniformConfig {
            num_objects: 1,
            snapshots: 200,
            change_prob: 0.5,
            ..UniformConfig::default()
        };
        let path = &cfg.paths(3)[0];
        let vels: Vec<Vec2> = path.windows(2).map(|w| w[1] - w[0]).collect();
        let changes = vels
            .windows(2)
            .filter(|w| (w[1] - w[0]).norm() > 1e-12)
            .count();
        assert!(changes > 50, "expected many velocity changes: {changes}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = UniformConfig::default();
        assert_eq!(cfg.paths(11), cfg.paths(11));
        assert_ne!(cfg.paths(11), cfg.paths(12));
    }
}
