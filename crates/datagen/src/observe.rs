//! Turning ground-truth paths into imprecise trajectory datasets.

use mobility::{simulate_reporting, MotionModel, ReportingScheme};
use rand::rngs::StdRng;
use rand::SeedableRng;
use trajdata::{Dataset, SnapshotPoint, Trajectory};
use trajgeo::stats::sample_std_normal;
use trajgeo::Point2;

/// Observes each path directly with isotropic Gaussian noise of standard
/// deviation `sigma`: every snapshot mean is the true position plus noise
/// and carries uncertainty `sigma`. This is the cheap observation model
/// used by the scalability experiments, where only data *shape* matters.
pub fn observe_directly(paths: &[Vec<Point2>], sigma: f64, seed: u64) -> Dataset {
    assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
    let mut rng = StdRng::seed_from_u64(seed);
    paths
        .iter()
        .map(|path| {
            Trajectory::new(
                path.iter()
                    .map(|&p| {
                        let noisy = Point2::new(
                            p.x + sigma * sample_std_normal(&mut rng),
                            p.y + sigma * sample_std_normal(&mut rng),
                        );
                        SnapshotPoint::new(noisy, sigma).expect("finite by construction")
                    })
                    .collect(),
            )
            .expect("finite by construction")
        })
        .collect()
}

/// Observes each path through the full dead-reckoning reporting protocol
/// of §3.1 (see the `mobility` crate): the resulting dataset is exactly
/// what the server would have recorded — exact locations at reports,
/// predictions with `σ = U/c` in between. The model is reset per path.
pub fn observe_via_reporting(
    paths: &[Vec<Point2>],
    model: &mut dyn MotionModel,
    scheme: &ReportingScheme,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    paths
        .iter()
        .map(|path| simulate_reporting(path, model, scheme, &mut rng).reconstructed)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::LinearModel;

    fn line_paths() -> Vec<Vec<Point2>> {
        (0..3)
            .map(|j| {
                (0..20)
                    .map(|i| Point2::new(i as f64 * 0.04, 0.1 * j as f64))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn direct_observation_preserves_shape() {
        let paths = line_paths();
        let d = observe_directly(&paths, 0.01, 7);
        assert_eq!(d.len(), 3);
        let t = &d.trajectories()[0];
        assert_eq!(t.len(), 20);
        for (sp, truth) in t.points().iter().zip(&paths[0]) {
            assert!(sp.mean.distance(*truth) < 0.06, "noise too large");
            assert_eq!(sp.sigma, 0.01);
        }
    }

    #[test]
    fn direct_observation_zero_sigma_is_exact() {
        let paths = line_paths();
        let d = observe_directly(&paths, 0.0, 7);
        for (t, p) in d.trajectories().iter().zip(&paths) {
            for (sp, truth) in t.points().iter().zip(p) {
                assert_eq!(sp.mean, *truth);
            }
        }
    }

    #[test]
    fn direct_observation_is_deterministic() {
        let paths = line_paths();
        assert_eq!(
            observe_directly(&paths, 0.02, 9),
            observe_directly(&paths, 0.02, 9)
        );
    }

    #[test]
    fn reporting_observation_runs_protocol() {
        let paths = line_paths();
        let scheme = ReportingScheme::new(0.05, 2.0, 0.0).unwrap();
        let mut model = LinearModel::new();
        let d = observe_via_reporting(&paths, &mut model, &scheme, 11);
        assert_eq!(d.len(), 3);
        // Linear paths predict perfectly: most snapshots are dead-reckoned
        // with sigma = U/c = 0.025.
        let dead = d.trajectories()[0]
            .points()
            .iter()
            .filter(|sp| (sp.sigma - 0.025).abs() < 1e-12)
            .count();
        assert!(dead > 10, "expected mostly dead-reckoned snapshots");
    }
}
