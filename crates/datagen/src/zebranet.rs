//! ZebraNet-style herd workload: the §6.2 scalability data set.
//!
//! "The second data set is generated based on the ZebraNet data \[16\] …
//! There are a certain number of zebra groups, within which zebras move
//! together. For each time snapshot, each group is randomly assigned a
//! moving distance and a moving direction that are extracted from the real
//! traces. A randomness is added to every individual zebra to simulate
//! noise in trajectories. Meanwhile, at each time snapshot, a certain
//! small number of zebras will leave the group and move individually."
//!
//! The real ZebraNet traces are not public; the empirical
//! distance/heading distributions are replaced by a log-normal step-length
//! distribution and a drifting heading (documented in DESIGN.md §3). The
//! mining-relevant property — many objects sharing a noisy common motion —
//! is preserved.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajgeo::stats::sample_std_normal;
use trajgeo::{BBox, Point2, Vec2};

/// Configuration of the ZebraNet-style generator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ZebraConfig {
    /// Number of herds.
    pub num_groups: usize,
    /// Zebras per herd.
    pub zebras_per_group: usize,
    /// Snapshots per trajectory (`L` in the paper's parameters).
    pub snapshots: usize,
    /// Log-space mean of the per-snapshot group step length.
    pub step_log_mean: f64,
    /// Log-space standard deviation of the step length.
    pub step_log_sigma: f64,
    /// Standard deviation of the per-snapshot heading drift (radians).
    pub heading_drift: f64,
    /// Standard deviation of each zebra's positional noise around the
    /// group center.
    pub zebra_noise: f64,
    /// Per-snapshot probability that a zebra leaves its group for good
    /// and moves individually thereafter.
    pub leave_prob: f64,
}

impl Default for ZebraConfig {
    fn default() -> Self {
        ZebraConfig {
            num_groups: 10,
            zebras_per_group: 10,
            snapshots: 100,
            // exp(-3.9) ≈ 0.02 of the unit square per snapshot.
            step_log_mean: -3.9,
            step_log_sigma: 0.35,
            heading_drift: 0.35,
            zebra_noise: 0.01,
            leave_prob: 0.002,
        }
    }
}

impl ZebraConfig {
    /// Total number of trajectories produced (`S` in the paper).
    pub fn num_trajectories(&self) -> usize {
        self.num_groups * self.zebras_per_group
    }

    /// Generates the ground-truth paths: `num_groups × zebras_per_group`
    /// trajectories of `snapshots` points each, confined to the unit
    /// square by reflection.
    pub fn paths(&self, seed: u64) -> Vec<Vec<Point2>> {
        let bbox = BBox::unit();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2eb_4a4e7);

        struct Group {
            pos: Point2,
            heading: f64,
        }
        struct Zebra {
            group: usize,
            offset: Vec2,
            pos: Point2,
            /// Independent motion state once the zebra has left its herd.
            solo: Option<(f64, f64)>, // (heading, speed)
        }

        let mut groups: Vec<Group> = (0..self.num_groups)
            .map(|_| Group {
                pos: Point2::new(rng.gen_range(0.1..0.9), rng.gen_range(0.1..0.9)),
                heading: rng.gen_range(0.0..std::f64::consts::TAU),
            })
            .collect();

        let mut zebras: Vec<Zebra> = (0..self.num_groups)
            .flat_map(|g| (0..self.zebras_per_group).map(move |z| (g, z)))
            .map(|(g, _)| {
                let offset = Vec2::new(
                    self.zebra_noise * 2.0 * sample_std_normal(&mut rng),
                    self.zebra_noise * 2.0 * sample_std_normal(&mut rng),
                );
                Zebra {
                    group: g,
                    offset,
                    pos: bbox.reflect(groups[g].pos + offset),
                    solo: None,
                }
            })
            .collect();

        let mut out: Vec<Vec<Point2>> = (0..zebras.len())
            .map(|_| Vec::with_capacity(self.snapshots))
            .collect();
        for _ in 0..self.snapshots {
            // Advance groups.
            for g in groups.iter_mut() {
                g.heading += self.heading_drift * sample_std_normal(&mut rng);
                let step =
                    (self.step_log_mean + self.step_log_sigma * sample_std_normal(&mut rng)).exp();
                g.pos = bbox.reflect(g.pos + Vec2::from_polar(step, g.heading));
            }
            // Advance zebras.
            for (zi, z) in zebras.iter_mut().enumerate() {
                match z.solo {
                    Some((heading, speed)) => {
                        z.pos = bbox.reflect(z.pos + Vec2::from_polar(speed, heading));
                        // Solo zebras also wander.
                        let h = heading + self.heading_drift * sample_std_normal(&mut rng);
                        z.solo = Some((h, speed));
                    }
                    None => {
                        if rng.gen::<f64>() < self.leave_prob {
                            let heading = rng.gen_range(0.0..std::f64::consts::TAU);
                            let speed = self.step_log_mean.exp();
                            z.solo = Some((heading, speed));
                        }
                        let noise = Vec2::new(
                            self.zebra_noise * sample_std_normal(&mut rng),
                            self.zebra_noise * sample_std_normal(&mut rng),
                        );
                        z.pos = bbox.reflect(groups[z.group].pos + z.offset + noise);
                    }
                }
                out[zi].push(z.pos);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let cfg = ZebraConfig {
            num_groups: 3,
            zebras_per_group: 4,
            snapshots: 25,
            ..ZebraConfig::default()
        };
        let paths = cfg.paths(1);
        assert_eq!(paths.len(), 12);
        assert_eq!(cfg.num_trajectories(), 12);
        assert!(paths.iter().all(|p| p.len() == 25));
    }

    #[test]
    fn confined_to_unit_square() {
        let cfg = ZebraConfig::default();
        for path in cfg.paths(2).iter().take(20) {
            for p in path {
                assert!(p.x >= 0.0 && p.x <= 1.0 && p.y >= 0.0 && p.y <= 1.0);
            }
        }
    }

    #[test]
    fn herd_members_stay_close_without_leavers() {
        let cfg = ZebraConfig {
            num_groups: 2,
            zebras_per_group: 5,
            snapshots: 50,
            leave_prob: 0.0,
            ..ZebraConfig::default()
        };
        let paths = cfg.paths(3);
        // Zebras 0..5 belong to group 0: pairwise distance stays bounded
        // by a few noise scales at every snapshot.
        for a in 0..5 {
            for b in (a + 1)..5 {
                for (t, (pa, pb)) in paths[a].iter().zip(&paths[b]).enumerate() {
                    let d = pa.distance(*pb);
                    assert!(d < 0.2, "herd dispersed: {d} at t={t}");
                }
            }
        }
    }

    #[test]
    fn groups_move_meaningfully() {
        let cfg = ZebraConfig {
            num_groups: 1,
            zebras_per_group: 1,
            snapshots: 100,
            leave_prob: 0.0,
            ..ZebraConfig::default()
        };
        let path = &cfg.paths(4)[0];
        let total: f64 = path.windows(2).map(|w| w[0].distance(w[1])).sum();
        assert!(total > 0.5, "herd should travel: {total}");
    }

    #[test]
    fn leavers_eventually_separate() {
        let cfg = ZebraConfig {
            num_groups: 1,
            zebras_per_group: 20,
            snapshots: 200,
            leave_prob: 0.02, // high so leaving is near-certain
            ..ZebraConfig::default()
        };
        let paths = cfg.paths(5);
        // With leave_prob 0.02 over 200 snapshots nearly every zebra
        // leaves; max pairwise final distance should exceed herd scale.
        let max_d = (0..20)
            .flat_map(|a| (0..20).map(move |b| (a, b)))
            .map(|(a, b)| paths[a][199].distance(paths[b][199]))
            .fold(0.0, f64::max);
        assert!(max_d > 0.2, "no zebra separated: {max_d}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ZebraConfig {
            num_groups: 2,
            zebras_per_group: 2,
            snapshots: 10,
            ..ZebraConfig::default()
        };
        assert_eq!(cfg.paths(9), cfg.paths(9));
        assert_ne!(cfg.paths(9), cfg.paths(10));
    }
}
