//! Trajectories and the location→velocity transformation (§3.2).

use crate::snapshot::SnapshotPoint;
use std::fmt;
use trajgeo::Point2;

/// Errors constructing or transforming a [`Trajectory`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrajectoryError {
    /// A snapshot point had non-finite coordinates or an invalid sigma.
    InvalidPoint {
        /// Index of the offending snapshot.
        index: usize,
    },
    /// The operation needs at least `required` snapshots but the trajectory
    /// has fewer.
    TooShort {
        /// Snapshots required by the operation.
        required: usize,
        /// Snapshots actually present.
        actual: usize,
    },
}

impl fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryError::InvalidPoint { index } => {
                write!(f, "invalid snapshot point at index {index}")
            }
            TrajectoryError::TooShort { required, actual } => {
                write!(f, "trajectory too short: need {required}, have {actual}")
            }
        }
    }
}

impl std::error::Error for TrajectoryError {}

/// A sequence of imprecise snapshot observations of one mobile object.
///
/// Both *location* trajectories and *velocity* trajectories share this type:
/// "the transformed velocity trajectories are in the same form as the
/// original location trajectories. Thus, we call both … *trajectories*."
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trajectory {
    points: Vec<SnapshotPoint>,
}

impl Trajectory {
    /// Builds a trajectory, validating every snapshot point.
    pub fn new(points: Vec<SnapshotPoint>) -> Result<Trajectory, TrajectoryError> {
        for (index, p) in points.iter().enumerate() {
            if !p.mean.is_finite() || !p.sigma.is_finite() || p.sigma < 0.0 {
                return Err(TrajectoryError::InvalidPoint { index });
            }
        }
        Ok(Trajectory { points })
    }

    /// Builds a trajectory of exactly-known locations (σ = 0 everywhere) —
    /// convenient for ground-truth paths in tests and generators.
    pub fn from_exact(locations: impl IntoIterator<Item = Point2>) -> Trajectory {
        Trajectory {
            points: locations.into_iter().map(SnapshotPoint::exact).collect(),
        }
    }

    /// Builds a trajectory **without validating** the snapshot points.
    ///
    /// This is the raw door used by repair pipelines: damaged input (NaN
    /// coordinates, negative sigmas) can be staged into a [`Trajectory`]
    /// and then fixed by [`crate::sanitize::sanitize`]. Anything that
    /// reaches the miner should have gone through [`Trajectory::new`] or
    /// the sanitizer first.
    pub fn from_raw_points(points: Vec<SnapshotPoint>) -> Trajectory {
        Trajectory { points }
    }

    /// Mutable access to the snapshot points, for the in-crate sanitizer.
    #[inline]
    pub(crate) fn points_mut(&mut self) -> &mut Vec<SnapshotPoint> {
        &mut self.points
    }

    /// Number of snapshots.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory has no snapshots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Snapshot at index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&SnapshotPoint> {
        self.points.get(i)
    }

    /// All snapshots as a slice.
    #[inline]
    pub fn points(&self) -> &[SnapshotPoint] {
        &self.points
    }

    /// The contiguous window of `len` snapshots starting at `start`, or
    /// `None` if it does not fit. Pattern matching slides such windows
    /// across the trajectory.
    #[inline]
    pub fn window(&self, start: usize, len: usize) -> Option<&[SnapshotPoint]> {
        let end = start.checked_add(len)?;
        self.points.get(start..end)
    }

    /// §3.2 location→velocity transformation. The velocity at snapshot `i`
    /// is the difference of two independent normals, hence itself normal
    /// with mean `l_{i+1} − l_i` and standard deviation
    /// `√(σ_i² + σ_{i+1}²)`. Requires at least 2 snapshots; the result has
    /// one fewer snapshot than `self`.
    ///
    /// ```
    /// use trajdata::{SnapshotPoint, Trajectory};
    /// use trajgeo::Point2;
    ///
    /// let t = Trajectory::new(vec![
    ///     SnapshotPoint::new(Point2::new(0.0, 0.0), 0.3).unwrap(),
    ///     SnapshotPoint::new(Point2::new(1.0, 2.0), 0.4).unwrap(),
    /// ]).unwrap();
    /// let v = t.to_velocity().unwrap();
    /// assert_eq!(v.len(), 1);
    /// assert_eq!(v[0].mean, Point2::new(1.0, 2.0));
    /// assert!((v[0].sigma - 0.5).abs() < 1e-12); // √(0.09 + 0.16)
    /// ```
    pub fn to_velocity(&self) -> Result<Trajectory, TrajectoryError> {
        if self.points.len() < 2 {
            return Err(TrajectoryError::TooShort {
                required: 2,
                actual: self.points.len(),
            });
        }
        let points = self
            .points
            .windows(2)
            .map(|w| {
                let d = w[1].mean - w[0].mean;
                SnapshotPoint {
                    // Velocities are displacements per snapshot interval;
                    // we store them as points in "velocity space".
                    mean: Point2::new(d.x, d.y),
                    sigma: (w[0].sigma * w[0].sigma + w[1].sigma * w[1].sigma).sqrt(),
                }
            })
            .collect();
        Ok(Trajectory { points })
    }

    /// Mean locations only (drops the uncertainty), e.g. for plotting or
    /// for deriving bounding boxes.
    pub fn means(&self) -> impl Iterator<Item = Point2> + '_ {
        self.points.iter().map(|p| p.mean)
    }

    /// Splits the trajectory at `mid`, returning the two halves. Useful for
    /// building train/test splits along time.
    pub fn split_at(&self, mid: usize) -> (Trajectory, Trajectory) {
        let mid = mid.min(self.points.len());
        (
            Trajectory {
                points: self.points[..mid].to_vec(),
            },
            Trajectory {
                points: self.points[mid..].to_vec(),
            },
        )
    }
}

impl std::ops::Index<usize> for Trajectory {
    type Output = SnapshotPoint;
    #[inline]
    fn index(&self, i: usize) -> &SnapshotPoint {
        &self.points[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(x: f64, y: f64, s: f64) -> SnapshotPoint {
        SnapshotPoint::new(Point2::new(x, y), s).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Trajectory::new(vec![st(0.0, 0.0, 0.1)]).is_ok());
        let bad = vec![SnapshotPoint {
            mean: Point2::new(f64::NAN, 0.0),
            sigma: 0.1,
        }];
        assert_eq!(
            Trajectory::new(bad),
            Err(TrajectoryError::InvalidPoint { index: 0 })
        );
    }

    #[test]
    fn velocity_transform_matches_paper_formulas() {
        let t = Trajectory::new(vec![
            st(0.0, 0.0, 0.3),
            st(1.0, 2.0, 0.4),
            st(3.0, 3.0, 0.0),
        ])
        .unwrap();
        let v = t.to_velocity().unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].mean, Point2::new(1.0, 2.0));
        assert!((v[0].sigma - 0.5).abs() < 1e-12); // √(0.09+0.16)
        assert_eq!(v[1].mean, Point2::new(2.0, 1.0));
        assert!((v[1].sigma - 0.4).abs() < 1e-12);
    }

    #[test]
    fn velocity_transform_requires_two_points() {
        let t = Trajectory::new(vec![st(0.0, 0.0, 0.1)]).unwrap();
        assert_eq!(
            t.to_velocity(),
            Err(TrajectoryError::TooShort {
                required: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn constant_motion_has_constant_velocity() {
        let pts: Vec<Point2> = (0..10).map(|i| Point2::new(i as f64 * 0.5, 0.0)).collect();
        let v = Trajectory::from_exact(pts).to_velocity().unwrap();
        assert_eq!(v.len(), 9);
        for p in v.points() {
            assert_eq!(p.mean, Point2::new(0.5, 0.0));
            assert_eq!(p.sigma, 0.0);
        }
    }

    #[test]
    fn window_bounds() {
        let t = Trajectory::from_exact((0..5).map(|i| Point2::new(i as f64, 0.0)));
        assert_eq!(t.window(0, 5).unwrap().len(), 5);
        assert_eq!(t.window(3, 2).unwrap().len(), 2);
        assert!(t.window(3, 3).is_none());
        assert!(t.window(usize::MAX, 2).is_none()); // overflow-safe
    }

    #[test]
    fn split_at_partitions() {
        let t = Trajectory::from_exact((0..6).map(|i| Point2::new(i as f64, 0.0)));
        let (a, b) = t.split_at(2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 4);
        assert_eq!(b[0].mean.x, 2.0);
        // Clamped split.
        let (c, d) = t.split_at(100);
        assert_eq!(c.len(), 6);
        assert!(d.is_empty());
    }
}
