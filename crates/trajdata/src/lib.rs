//! Imprecise trajectory data model (§3.2 of the TrajPattern paper).
//!
//! A mobile object's location at a synchronized snapshot is not a point but
//! a distribution: "`T = (l₁,σ₁), (l₂,σ₂), …` where `l_i` and `σ_i` are the
//! mean and standard deviation of the distribution of the true location of
//! o at the i-th snapshot". This crate provides:
//!
//! - [`SnapshotPoint`]: one `(l_i, σ_i)` entry.
//! - [`Trajectory`]: a validated sequence of snapshot points, with the
//!   paper's location→velocity transformation ([`Trajectory::to_velocity`]).
//! - [`Dataset`]: a collection of trajectories (the miner's input `D`) with
//!   summary statistics and (optionally) JSON persistence.
//! - [`resample`]: linear resampling of raw timestamped traces onto a
//!   synchronized snapshot schedule, used to align raw GPS-style readings
//!   before they enter the reporting/prediction pipeline.
//! - [`csv`]: a dependency-free CSV codec for bulk trace interchange, with
//!   fault-tolerant ingest policies ([`csv::ingest`]) for damaged files.
//! - [`sanitize`]: in-place repair of recoverable dataset defects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod dataset;
pub mod eventlog;
pub mod resample;
pub mod sanitize;
pub mod snapshot;
pub mod trajectory;

pub use csv::{ingest, IngestPolicy, IngestReport};
pub use dataset::{Dataset, DatasetStats};
pub use eventlog::{EventLogError, EventTailer, LineFollower, TailError};
pub use sanitize::{sanitize, SanitizeReport};
pub use snapshot::SnapshotPoint;
pub use trajectory::{Trajectory, TrajectoryError};
