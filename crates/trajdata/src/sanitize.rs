//! Dataset sanitization: repairing recoverable defects in place.
//!
//! The paper's premise (§1) is that location data is unreliable; real
//! feeds contain NaN coordinates from dead sensors, negative sigmas from
//! unit bugs, and so on. [`sanitize`] repairs what is recoverable and
//! drops what is not, reporting every fix:
//!
//! - **Non-finite coordinates** are linearly interpolated from the nearest
//!   finite neighbours — the same repair §3.2 applies at synchronization
//!   points. Unanchored garbage (a non-finite prefix/suffix) is dropped.
//! - **Negative or non-finite sigmas** are clamped to `0` (exactly-known),
//!   the conservative choice that never widens uncertainty it cannot
//!   justify.
//! - **Trajectories with no finite snapshot at all** are dropped.
//!
//! The sanitizer is idempotent (`sanitize(sanitize(d)) == sanitize(d)`)
//! and never changes an already-valid dataset — both properties are
//! enforced by `tests/sanitize_props.rs`. It runs on *any* dataset, not
//! just CSV input: JSON deserialization also bypasses validation, so a
//! loaded dataset can carry the same defects.

use crate::dataset::Dataset;
use crate::snapshot::SnapshotPoint;
use std::fmt;

/// Counts of the repairs performed by one [`sanitize`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Snapshots whose non-finite coordinates were interpolated from
    /// finite neighbours.
    pub coords_interpolated: usize,
    /// Snapshots whose negative/non-finite sigma was clamped to `0`.
    pub sigmas_clamped: usize,
    /// Snapshots dropped because interpolation had no anchor (non-finite
    /// prefix or suffix of a trajectory).
    pub snapshots_dropped: usize,
    /// Trajectories dropped because they had no finite snapshot at all.
    pub trajectories_dropped: usize,
}

impl SanitizeReport {
    /// Whether the pass changed nothing (the dataset was already valid).
    pub fn is_clean(&self) -> bool {
        *self == SanitizeReport::default()
    }

    /// Total number of individual repairs and drops.
    pub fn total_fixes(&self) -> usize {
        self.coords_interpolated
            + self.sigmas_clamped
            + self.snapshots_dropped
            + self.trajectories_dropped
    }
}

impl fmt::Display for SanitizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "sanitize: dataset already valid");
        }
        write!(
            f,
            "sanitize: {} coords interpolated, {} sigmas clamped, \
             {} snapshots dropped, {} trajectories dropped",
            self.coords_interpolated,
            self.sigmas_clamped,
            self.snapshots_dropped,
            self.trajectories_dropped
        )
    }
}

/// Repairs recoverable defects in `data` in place (see the module docs)
/// and reports what was fixed. After this returns, every remaining
/// snapshot has finite coordinates and a finite, non-negative sigma.
pub fn sanitize(data: &mut Dataset) -> SanitizeReport {
    let mut report = SanitizeReport::default();
    data.trajectories_mut()
        .retain_mut(|t| sanitize_points(t.points_mut(), &mut report));
    report
}

/// Repairs one trajectory's point list in place. Returns `false` when the
/// trajectory is unrecoverable (non-empty but without a single finite
/// snapshot) and should be dropped.
pub(crate) fn sanitize_points(
    points: &mut Vec<SnapshotPoint>,
    report: &mut SanitizeReport,
) -> bool {
    // An empty trajectory is valid; never touch it.
    if points.is_empty() {
        return true;
    }

    // 1. Clamp invalid sigmas to "exactly known".
    for p in points.iter_mut() {
        if !(p.sigma.is_finite() && p.sigma >= 0.0) {
            p.sigma = 0.0;
            report.sigmas_clamped += 1;
        }
    }

    // 2. Repair non-finite coordinates.
    let finite: Vec<bool> = points.iter().map(|p| p.mean.is_finite()).collect();
    if finite.iter().all(|&b| b) {
        return true;
    }
    let Some(first_finite) = finite.iter().position(|&b| b) else {
        report.trajectories_dropped += 1;
        return false;
    };
    let last_finite = finite.iter().rposition(|&b| b).expect("position found");

    // Interior gaps are anchored on both sides: interpolate, exactly as
    // §3.2 interpolates between synchronization points.
    let mut i = first_finite + 1;
    while i < last_finite {
        if finite[i] {
            i += 1;
            continue;
        }
        let lo = i;
        let mut hi = i;
        while !finite[hi + 1] {
            hi += 1; // bounded: finite[last_finite] is true
        }
        let a = points[lo - 1].mean;
        let b = points[hi + 1].mean;
        let span = (hi + 2 - lo) as f64;
        for (off, idx) in (lo..=hi).enumerate() {
            points[idx].mean = a.lerp(b, (off + 1) as f64 / span);
            report.coords_interpolated += 1;
        }
        i = hi + 2;
    }

    // Unanchored prefix/suffix garbage cannot be interpolated: drop it.
    let n = points.len();
    let dropped = first_finite + (n - 1 - last_finite);
    if dropped > 0 {
        report.snapshots_dropped += dropped;
        points.truncate(last_finite + 1);
        points.drain(..first_finite);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::Trajectory;
    use trajgeo::Point2;

    fn sp(x: f64, y: f64, sigma: f64) -> SnapshotPoint {
        SnapshotPoint {
            mean: Point2::new(x, y),
            sigma,
        }
    }

    fn raw(points: Vec<SnapshotPoint>) -> Dataset {
        Dataset::from_trajectories(vec![Trajectory::from_raw_points(points)])
    }

    #[test]
    fn valid_dataset_is_untouched() {
        let mut d = raw(vec![sp(0.0, 0.0, 0.1), sp(1.0, 1.0, 0.0)]);
        let before = d.clone();
        let report = sanitize(&mut d);
        assert!(report.is_clean());
        assert_eq!(d, before);
    }

    #[test]
    fn empty_dataset_and_empty_trajectory_are_valid() {
        let mut d = Dataset::new();
        assert!(sanitize(&mut d).is_clean());
        let mut d = raw(vec![]);
        assert!(sanitize(&mut d).is_clean());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn negative_and_non_finite_sigmas_are_clamped() {
        let mut d = raw(vec![
            sp(0.0, 0.0, -0.5),
            sp(1.0, 0.0, f64::NAN),
            sp(2.0, 0.0, f64::INFINITY),
            sp(3.0, 0.0, 0.2),
        ]);
        let report = sanitize(&mut d);
        assert_eq!(report.sigmas_clamped, 3);
        let pts = d.trajectories()[0].points();
        assert_eq!(pts[0].sigma, 0.0);
        assert_eq!(pts[1].sigma, 0.0);
        assert_eq!(pts[2].sigma, 0.0);
        assert_eq!(pts[3].sigma, 0.2);
    }

    #[test]
    fn interior_nan_coords_are_interpolated() {
        let mut d = raw(vec![
            sp(0.0, 0.0, 0.1),
            sp(f64::NAN, 5.0, 0.1),
            sp(f64::NAN, f64::NAN, 0.1),
            sp(3.0, 3.0, 0.1),
        ]);
        let report = sanitize(&mut d);
        assert_eq!(report.coords_interpolated, 2);
        let pts = d.trajectories()[0].points();
        assert_eq!(pts.len(), 4);
        assert!((pts[1].mean.x - 1.0).abs() < 1e-12);
        assert!((pts[1].mean.y - 1.0).abs() < 1e-12);
        assert!((pts[2].mean.x - 2.0).abs() < 1e-12);
        assert!((pts[2].mean.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unanchored_ends_are_dropped() {
        let mut d = raw(vec![
            sp(f64::NAN, 0.0, 0.1),
            sp(1.0, 1.0, 0.1),
            sp(2.0, 2.0, 0.1),
            sp(f64::INFINITY, 0.0, 0.1),
        ]);
        let report = sanitize(&mut d);
        assert_eq!(report.snapshots_dropped, 2);
        let pts = d.trajectories()[0].points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].mean, Point2::new(1.0, 1.0));
    }

    #[test]
    fn hopeless_trajectory_is_dropped() {
        let mut d = Dataset::from_trajectories(vec![
            Trajectory::from_raw_points(vec![sp(f64::NAN, f64::NAN, 0.1)]),
            Trajectory::new(vec![SnapshotPoint::new(Point2::new(0.5, 0.5), 0.1).unwrap()]).unwrap(),
        ]);
        let report = sanitize(&mut d);
        assert_eq!(report.trajectories_dropped, 1);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn sanitize_is_idempotent() {
        let mut d = raw(vec![
            sp(f64::NAN, 0.0, -1.0),
            sp(1.0, 1.0, 0.1),
            sp(f64::NAN, 0.0, 0.1),
            sp(3.0, 3.0, f64::NAN),
        ]);
        sanitize(&mut d);
        let once = d.clone();
        let second = sanitize(&mut d);
        assert!(second.is_clean(), "second pass must be a no-op: {second}");
        assert_eq!(d, once);
    }

    #[test]
    fn report_display_reads_well() {
        let clean = SanitizeReport::default();
        assert!(clean.to_string().contains("already valid"));
        let busy = SanitizeReport {
            coords_interpolated: 2,
            sigmas_clamped: 1,
            snapshots_dropped: 0,
            trajectories_dropped: 0,
        };
        assert_eq!(busy.total_fixes(), 3);
        assert!(busy.to_string().contains("2 coords interpolated"));
    }
}
