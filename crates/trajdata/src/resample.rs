//! Synchronizing raw timestamped traces onto snapshot schedules.
//!
//! §3.2: "a set of synchronous snapshots are generated on the server. A
//! series of synchronization points can be superimposed on the asynchronous
//! data. The interpolated values (at synchronization points) can be taken as
//! the input to the data mining modules."
//!
//! Two layers of synchronization exist in the pipeline:
//!
//! 1. Raw device readings (e.g. the bus GPS readings, one per minute with
//!    jitter) → a regular ground-truth path. That is this module: plain
//!    linear interpolation of *exact* positions.
//! 2. Asynchronous *reports* filtered by a prediction model → imprecise
//!    snapshots `(l_i, σ_i)`. That lives in the `mobility` crate because it
//!    needs the prediction model.

use trajgeo::Point2;

/// A raw timestamped reading from a device.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RawReading {
    /// Time of the reading, in arbitrary but consistent units.
    pub time: f64,
    /// Observed location.
    pub loc: Point2,
}

/// Linearly interpolates the piecewise-linear path through `readings` at
/// each time in `at_times`. Readings must be sorted by strictly increasing
/// time; query times outside the covered range are clamped to the endpoint
/// positions (the object is assumed stationary before its first and after
/// its last reading).
///
/// Returns `None` if `readings` is empty or not strictly sorted.
pub fn resample_linear(readings: &[RawReading], at_times: &[f64]) -> Option<Vec<Point2>> {
    if readings.is_empty() {
        return None;
    }
    if readings
        .windows(2)
        .any(|w| w[0].time >= w[1].time || w[0].time.is_nan())
    {
        return None;
    }
    let mut out = Vec::with_capacity(at_times.len());
    for &t in at_times {
        out.push(position_at(readings, t));
    }
    Some(out)
}

/// Builds a regular snapshot schedule `start, start+dt, …` with `n` points.
pub fn regular_schedule(start: f64, dt: f64, n: usize) -> Vec<f64> {
    (0..n).map(|i| start + dt * i as f64).collect()
}

/// The server-side synchronization lattice (§3.2): every multiple of
/// `dt` inside `[t_min, t_max]`. Anchoring sync points to multiples of
/// `dt` — rather than to each object's first report — is what makes
/// asynchronous reports from different objects land on *the same*
/// snapshot schedule, the precondition for mining across them.
///
/// Returns `None` for non-finite bounds or a non-positive `dt`; an
/// empty vec when no lattice point falls inside the span.
pub fn schedule_covering(t_min: f64, t_max: f64, dt: f64) -> Option<Vec<f64>> {
    if !(t_min.is_finite() && t_max.is_finite() && dt.is_finite() && dt > 0.0) {
        return None;
    }
    if t_max < t_min {
        return None;
    }
    let i0 = (t_min / dt).ceil() as i64;
    let i1 = (t_max / dt).floor() as i64;
    Some((i0..=i1).map(|i| i as f64 * dt).collect())
}

fn position_at(readings: &[RawReading], t: f64) -> Point2 {
    match readings.binary_search_by(|r| r.time.partial_cmp(&t).expect("times are finite")) {
        Ok(i) => readings[i].loc,
        Err(0) => readings[0].loc,
        Err(i) if i == readings.len() => readings[readings.len() - 1].loc,
        Err(i) => {
            let a = &readings[i - 1];
            let b = &readings[i];
            let frac = (t - a.time) / (b.time - a.time);
            a.loc.lerp(b.loc, frac)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(time: f64, x: f64, y: f64) -> RawReading {
        RawReading {
            time,
            loc: Point2::new(x, y),
        }
    }

    #[test]
    fn interpolates_between_readings() {
        let readings = [r(0.0, 0.0, 0.0), r(10.0, 10.0, 0.0)];
        let out = resample_linear(&readings, &[0.0, 2.5, 5.0, 10.0]).unwrap();
        assert_eq!(out[0], Point2::new(0.0, 0.0));
        assert_eq!(out[1], Point2::new(2.5, 0.0));
        assert_eq!(out[2], Point2::new(5.0, 0.0));
        assert_eq!(out[3], Point2::new(10.0, 0.0));
    }

    #[test]
    fn clamps_outside_range() {
        let readings = [r(1.0, 1.0, 1.0), r(2.0, 2.0, 2.0)];
        let out = resample_linear(&readings, &[0.0, 3.0]).unwrap();
        assert_eq!(out[0], Point2::new(1.0, 1.0));
        assert_eq!(out[1], Point2::new(2.0, 2.0));
    }

    #[test]
    fn exact_hits_return_reading() {
        let readings = [r(0.0, 0.0, 0.0), r(1.0, 3.0, 4.0), r(2.0, 5.0, 5.0)];
        let out = resample_linear(&readings, &[1.0]).unwrap();
        assert_eq!(out[0], Point2::new(3.0, 4.0));
    }

    #[test]
    fn rejects_empty_and_unsorted() {
        assert!(resample_linear(&[], &[0.0]).is_none());
        let unsorted = [r(1.0, 0.0, 0.0), r(0.5, 1.0, 1.0)];
        assert!(resample_linear(&unsorted, &[0.7]).is_none());
        let dup = [r(1.0, 0.0, 0.0), r(1.0, 1.0, 1.0)];
        assert!(resample_linear(&dup, &[1.0]).is_none());
    }

    #[test]
    fn regular_schedule_spacing() {
        let s = regular_schedule(5.0, 0.5, 4);
        assert_eq!(s, vec![5.0, 5.5, 6.0, 6.5]);
        assert!(regular_schedule(0.0, 1.0, 0).is_empty());
    }

    #[test]
    fn schedule_covering_is_the_dt_lattice() {
        assert_eq!(schedule_covering(0.0, 2.0, 1.0), Some(vec![0.0, 1.0, 2.0]));
        assert_eq!(schedule_covering(0.3, 2.1, 1.0), Some(vec![1.0, 2.0]));
        // Same lattice regardless of where an object's span starts.
        assert_eq!(schedule_covering(1.2, 2.9, 0.5), Some(vec![1.5, 2.0, 2.5]));
        assert_eq!(schedule_covering(0.6, 0.9, 1.0), Some(vec![]));
        assert_eq!(schedule_covering(2.0, 1.0, 1.0), None);
        assert_eq!(schedule_covering(0.0, 1.0, 0.0), None);
        assert_eq!(schedule_covering(f64::NAN, 1.0, 1.0), None);
    }

    #[test]
    fn multi_segment_path() {
        let readings = [r(0.0, 0.0, 0.0), r(1.0, 1.0, 0.0), r(2.0, 1.0, 2.0)];
        let out = resample_linear(&readings, &[0.5, 1.5]).unwrap();
        assert_eq!(out[0], Point2::new(0.5, 0.0));
        assert_eq!(out[1], Point2::new(1.0, 1.0));
    }
}
