//! Trajectory datasets: the miner's input `D`.

use crate::trajectory::{Trajectory, TrajectoryError};
use trajgeo::BBox;

/// A set of imprecise trajectories, the input to pattern mining.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dataset {
    trajectories: Vec<Trajectory>,
}

/// Summary statistics of a dataset (the paper's `S`, `L` parameters and the
/// spatial extent).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DatasetStats {
    /// Number of trajectories (`S` / `N` in the paper).
    pub num_trajectories: usize,
    /// Total number of snapshots across all trajectories.
    pub total_snapshots: usize,
    /// Average trajectory length (`L`).
    pub avg_len: f64,
    /// Shortest trajectory length.
    pub min_len: usize,
    /// Longest trajectory length.
    pub max_len: usize,
    /// Mean of the per-snapshot sigmas (how imprecise the data is overall).
    pub avg_sigma: f64,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Builds a dataset from trajectories.
    pub fn from_trajectories(trajectories: Vec<Trajectory>) -> Dataset {
        Dataset { trajectories }
    }

    /// Adds one trajectory.
    pub fn push(&mut self, t: Trajectory) {
        self.trajectories.push(t);
    }

    /// Number of trajectories.
    #[inline]
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Whether the dataset holds no trajectories.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// The trajectories as a slice.
    #[inline]
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// Mutable access to the trajectory list, for the in-crate sanitizer.
    #[inline]
    pub(crate) fn trajectories_mut(&mut self) -> &mut Vec<Trajectory> {
        &mut self.trajectories
    }

    /// Iterate over the trajectories.
    pub fn iter(&self) -> impl Iterator<Item = &Trajectory> {
        self.trajectories.iter()
    }

    /// Transforms every location trajectory into a velocity trajectory
    /// (§3.2). Trajectories with fewer than 2 snapshots are rejected.
    pub fn to_velocity(&self) -> Result<Dataset, TrajectoryError> {
        let trajectories = self
            .trajectories
            .iter()
            .map(|t| t.to_velocity())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Dataset { trajectories })
    }

    /// Summary statistics; `None` for an empty dataset.
    pub fn stats(&self) -> Option<DatasetStats> {
        if self.trajectories.is_empty() {
            return None;
        }
        let mut total = 0usize;
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        let mut sigma_sum = 0.0;
        for t in &self.trajectories {
            total += t.len();
            min_len = min_len.min(t.len());
            max_len = max_len.max(t.len());
            sigma_sum += t.points().iter().map(|p| p.sigma).sum::<f64>();
        }
        Some(DatasetStats {
            num_trajectories: self.trajectories.len(),
            total_snapshots: total,
            avg_len: total as f64 / self.trajectories.len() as f64,
            min_len,
            max_len,
            avg_sigma: if total > 0 {
                sigma_sum / total as f64
            } else {
                0.0
            },
        })
    }

    /// Smallest bounding box enclosing every snapshot mean, or `None` if
    /// the dataset has no snapshots. This is the natural domain for a grid
    /// when none is given explicitly.
    pub fn bounding_box(&self) -> Option<BBox> {
        BBox::enclosing(self.trajectories.iter().flat_map(|t| t.means()))
    }

    /// Splits into `(head, tail)` where `head` holds the first `n`
    /// trajectories — the train/test split used by the Fig. 3 experiment
    /// (450 training / 50 test trajectories).
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        let n = n.min(self.trajectories.len());
        (
            Dataset {
                trajectories: self.trajectories[..n].to_vec(),
            },
            Dataset {
                trajectories: self.trajectories[n..].to_vec(),
            },
        )
    }

    /// Serializes to pretty JSON.
    #[cfg(feature = "serde")]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("dataset serialization cannot fail")
    }

    /// Deserializes from JSON produced by [`Dataset::to_json`].
    #[cfg(feature = "serde")]
    pub fn from_json(s: &str) -> Result<Dataset, serde_json::Error> {
        serde_json::from_str(s)
    }
}

impl FromIterator<Trajectory> for Dataset {
    fn from_iter<I: IntoIterator<Item = Trajectory>>(iter: I) -> Dataset {
        Dataset {
            trajectories: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotPoint;
    use trajgeo::Point2;

    fn line_traj(n: usize, sigma: f64) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| SnapshotPoint::new(Point2::new(i as f64, 0.0), sigma).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn stats_reflect_contents() {
        let d = Dataset::from_trajectories(vec![line_traj(4, 0.2), line_traj(8, 0.4)]);
        let s = d.stats().unwrap();
        assert_eq!(s.num_trajectories, 2);
        assert_eq!(s.total_snapshots, 12);
        assert!((s.avg_len - 6.0).abs() < 1e-12);
        assert_eq!(s.min_len, 4);
        assert_eq!(s.max_len, 8);
        assert!((s.avg_sigma - (4.0 * 0.2 + 8.0 * 0.4) / 12.0).abs() < 1e-12);
        assert!(Dataset::new().stats().is_none());
    }

    #[test]
    fn velocity_dataset_preserves_cardinality() {
        let d = Dataset::from_trajectories(vec![line_traj(5, 0.1), line_traj(3, 0.1)]);
        let v = d.to_velocity().unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v.trajectories()[0].len(), 4);
        assert_eq!(v.trajectories()[1].len(), 2);
    }

    #[test]
    fn velocity_dataset_fails_on_singleton_trajectory() {
        let d = Dataset::from_trajectories(vec![line_traj(1, 0.1)]);
        assert!(d.to_velocity().is_err());
    }

    #[test]
    fn bounding_box_covers_all_means() {
        let d = Dataset::from_trajectories(vec![line_traj(5, 0.1)]);
        let b = d.bounding_box().unwrap();
        assert!(b.contains(Point2::new(0.0, 0.0)));
        assert!(b.contains(Point2::new(4.0, 0.0)));
        assert!(Dataset::new().bounding_box().is_none());
    }

    #[test]
    fn split_for_train_test() {
        let d: Dataset = (0..10).map(|_| line_traj(3, 0.1)).collect();
        let (train, test) = d.split_at(7);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        let (all, none) = d.split_at(99);
        assert_eq!(all.len(), 10);
        assert!(none.is_empty());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn json_round_trip() {
        let d = Dataset::from_trajectories(vec![line_traj(3, 0.25)]);
        let j = d.to_json();
        let back = Dataset::from_json(&j).unwrap();
        assert_eq!(d, back);
    }
}
