//! Plain-text CSV interchange for trajectory datasets.
//!
//! Real deployments rarely speak JSON for bulk trace data; this module
//! provides a dependency-free CSV codec with the schema
//!
//! ```text
//! traj_id,snapshot,x,y,sigma
//! 0,0,0.125,0.625,0.0
//! 0,1,0.375,0.625,0.006
//! ```
//!
//! Rows must be grouped by `traj_id` with `snapshot` increasing from 0
//! within each trajectory (the on-disk order *is* the snapshot order;
//! the indices exist to catch truncated or shuffled files).

use crate::dataset::Dataset;
use crate::sanitize::{sanitize, SanitizeReport};
use crate::snapshot::SnapshotPoint;
use crate::trajectory::Trajectory;
use std::fmt;
use trajgeo::Point2;

/// Errors reading CSV trajectory data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The header row was missing or not the expected schema.
    BadHeader,
    /// A data row did not have exactly five fields.
    WrongFieldCount {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
    },
    /// `snapshot` indices were not consecutive from 0 within a trajectory,
    /// or `traj_id`s went backwards.
    BadOrdering {
        /// 1-based line number.
        line: usize,
    },
    /// A snapshot had non-finite coordinates or a negative sigma.
    InvalidSnapshot {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::BadHeader => {
                write!(f, "expected header 'traj_id,snapshot,x,y,sigma'")
            }
            CsvError::WrongFieldCount { line } => {
                write!(f, "line {line}: expected 5 comma-separated fields")
            }
            CsvError::BadNumber { line, field } => {
                write!(f, "line {line}: field '{field}' is not a valid number")
            }
            CsvError::BadOrdering { line } => {
                write!(f, "line {line}: snapshots/trajectories out of order")
            }
            CsvError::InvalidSnapshot { line } => {
                write!(f, "line {line}: non-finite coordinates or negative sigma")
            }
        }
    }
}

impl std::error::Error for CsvError {}

const HEADER: &str = "traj_id,snapshot,x,y,sigma";

/// Serializes a dataset to CSV (including the header row).
pub fn to_csv(data: &Dataset) -> String {
    let mut out = String::with_capacity(32 * (1 + data.iter().map(|t| t.len()).sum::<usize>()));
    out.push_str(HEADER);
    out.push('\n');
    for (ti, traj) in data.iter().enumerate() {
        for (si, sp) in traj.points().iter().enumerate() {
            // 17 significant digits round-trip f64 exactly.
            out.push_str(&format!(
                "{ti},{si},{:.17e},{:.17e},{:.17e}\n",
                sp.mean.x, sp.mean.y, sp.sigma
            ));
        }
    }
    out
}

/// Parses CSV produced by [`to_csv`] (or any file with the same schema).
pub fn from_csv(text: &str) -> Result<Dataset, CsvError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        _ => return Err(CsvError::BadHeader),
    }

    let mut trajectories: Vec<Trajectory> = Vec::new();
    let mut current: Vec<SnapshotPoint> = Vec::new();
    let mut current_id: Option<u64> = None;

    for (idx, raw) in lines {
        let line = idx + 1; // 1-based, counting the header as line 1
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let fields: Vec<&str> = raw.split(',').collect();
        if fields.len() != 5 {
            return Err(CsvError::WrongFieldCount { line });
        }
        let traj_id: u64 = fields[0].trim().parse().map_err(|_| CsvError::BadNumber {
            line,
            field: "traj_id",
        })?;
        let snapshot: usize = fields[1].trim().parse().map_err(|_| CsvError::BadNumber {
            line,
            field: "snapshot",
        })?;
        let x: f64 = fields[2]
            .trim()
            .parse()
            .map_err(|_| CsvError::BadNumber { line, field: "x" })?;
        let y: f64 = fields[3]
            .trim()
            .parse()
            .map_err(|_| CsvError::BadNumber { line, field: "y" })?;
        let sigma: f64 = fields[4].trim().parse().map_err(|_| CsvError::BadNumber {
            line,
            field: "sigma",
        })?;

        match current_id {
            Some(id) if id == traj_id => {
                if snapshot != current.len() {
                    return Err(CsvError::BadOrdering { line });
                }
            }
            Some(id) => {
                if traj_id < id || snapshot != 0 {
                    return Err(CsvError::BadOrdering { line });
                }
                trajectories.push(
                    Trajectory::new(std::mem::take(&mut current)).expect("validated per-row"),
                );
                current_id = Some(traj_id);
            }
            None => {
                if snapshot != 0 {
                    return Err(CsvError::BadOrdering { line });
                }
                current_id = Some(traj_id);
            }
        }
        let sp = SnapshotPoint::new(Point2::new(x, y), sigma)
            .ok_or(CsvError::InvalidSnapshot { line })?;
        current.push(sp);
    }
    if current_id.is_some() {
        trajectories.push(Trajectory::new(current).expect("validated per-row"));
    }
    Ok(Dataset::from_trajectories(trajectories))
}

/// How [`ingest`] reacts to malformed input.
///
/// Real deployments break in exactly the places §1 warns about — sensors
/// fail, exports truncate, fields corrupt. The policy decides whether one
/// bad row aborts the load or the load routes around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestPolicy {
    /// Abort on the first defect with a precise [`CsvError`] — today's
    /// (and the default) behavior.
    #[default]
    Strict,
    /// Drop defective rows (and trajectories left empty by the drops),
    /// returning whatever parses cleanly plus an [`IngestReport`].
    Skip,
    /// Like [`IngestPolicy::Skip`], but additionally repair recoverable
    /// defects: non-finite coordinates are interpolated from neighbours
    /// (à la §3.2), negative sigmas clamped, duplicate snapshots deduped
    /// and out-of-order snapshots reordered when unambiguous.
    Repair,
}

impl std::str::FromStr for IngestPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<IngestPolicy, String> {
        match s {
            "strict" => Ok(IngestPolicy::Strict),
            "skip" => Ok(IngestPolicy::Skip),
            "repair" => Ok(IngestPolicy::Repair),
            other => Err(format!(
                "unknown ingest policy '{other}' (expected strict|skip|repair)"
            )),
        }
    }
}

/// Categories of input defects an [`IngestReport`] counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defect {
    /// The header row was missing or malformed.
    MissingHeader,
    /// A data row did not have exactly five fields.
    WrongFieldCount,
    /// A field failed to parse as a number.
    BadNumber,
    /// Snapshot indices were out of order within a trajectory.
    OutOfOrder,
    /// Two rows claimed the same snapshot index of one trajectory.
    DuplicateSnapshot,
    /// Non-finite coordinates or a negative sigma.
    InvalidValue,
    /// A trajectory id went backwards (ids must be non-decreasing).
    IdRegression,
}

impl Defect {
    /// Every category, in report order.
    pub const ALL: [Defect; 7] = [
        Defect::MissingHeader,
        Defect::WrongFieldCount,
        Defect::BadNumber,
        Defect::OutOfOrder,
        Defect::DuplicateSnapshot,
        Defect::InvalidValue,
        Defect::IdRegression,
    ];

    fn index(self) -> usize {
        Defect::ALL.iter().position(|&d| d == self).expect("listed")
    }

    /// Short human-readable category name.
    pub fn describe(self) -> &'static str {
        match self {
            Defect::MissingHeader => "missing header",
            Defect::WrongFieldCount => "wrong field count",
            Defect::BadNumber => "unparseable number",
            Defect::OutOfOrder => "out-of-order snapshot",
            Defect::DuplicateSnapshot => "duplicate snapshot",
            Defect::InvalidValue => "invalid value",
            Defect::IdRegression => "trajectory id regression",
        }
    }
}

/// One located defect: what went wrong and on which 1-based line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based line number in the input.
    pub line: usize,
    /// The defect category.
    pub defect: Defect,
}

/// Per-category cap on retained [`Diagnostic`]s, so a pathological file
/// (millions of bad rows) cannot balloon memory through error collection.
/// Counts stay exact; only the located diagnostics are truncated (and
/// [`IngestReport::truncated`] says so).
pub const MAX_DIAGNOSTICS_PER_DEFECT: usize = 32;

/// What [`ingest`] saw and did: row counts, per-category defect counts,
/// capped per-line diagnostics, and (under [`IngestPolicy::Repair`]) the
/// sanitizer's fix report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Non-blank data rows encountered (header excluded).
    pub rows_read: usize,
    /// Rows accepted into the dataset (under `Repair`, possibly after
    /// in-place repair).
    pub rows_kept: usize,
    /// Trajectories in the returned dataset.
    pub trajectories_kept: usize,
    /// Whether per-line diagnostics were dropped after hitting
    /// [`MAX_DIAGNOSTICS_PER_DEFECT`] (defect *counts* remain exact).
    pub truncated: bool,
    /// Value-level repairs performed by the sanitizer (`Repair` only).
    pub sanitize: Option<SanitizeReport>,
    counts: [usize; Defect::ALL.len()],
    diagnostics: Vec<Diagnostic>,
}

impl IngestReport {
    fn record(&mut self, line: usize, defect: Defect) {
        let i = defect.index();
        self.counts[i] += 1;
        if self.counts[i] <= MAX_DIAGNOSTICS_PER_DEFECT {
            self.diagnostics.push(Diagnostic { line, defect });
        } else {
            self.truncated = true;
        }
    }

    /// Exact number of defects seen in `defect`'s category (not capped).
    pub fn count(&self, defect: Defect) -> usize {
        self.counts[defect.index()]
    }

    /// Exact total number of defects across all categories.
    pub fn total_defects(&self) -> usize {
        self.counts.iter().sum()
    }

    /// The retained per-line diagnostics (at most
    /// [`MAX_DIAGNOSTICS_PER_DEFECT`] per category, in input order).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Whether the input had no defects at all.
    pub fn is_clean(&self) -> bool {
        self.total_defects() == 0 && self.sanitize.is_none_or(|s| s.is_clean())
    }
}

impl fmt::Display for IngestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ingested {}/{} rows into {} trajectories",
            self.rows_kept, self.rows_read, self.trajectories_kept
        )?;
        for d in Defect::ALL {
            if self.count(d) > 0 {
                write!(f, "; {} × {}", self.count(d), d.describe())?;
            }
        }
        if let Some(s) = &self.sanitize {
            if !s.is_clean() {
                write!(f, "; {s}")?;
            }
        }
        if self.truncated {
            write!(f, " (diagnostics truncated)")?;
        }
        Ok(())
    }
}

/// One successfully parsed data row, before ordering/validity checks.
struct ParsedRow {
    line: usize,
    snapshot: usize,
    x: f64,
    y: f64,
    sigma: f64,
}

/// Parses CSV trajectory data under the given fault-handling `policy`.
///
/// - [`IngestPolicy::Strict`] behaves exactly like [`from_csv`]: the first
///   defect aborts with a precise [`CsvError`].
/// - [`IngestPolicy::Skip`] and [`IngestPolicy::Repair`] never fail: they
///   return whatever could be salvaged plus an [`IngestReport`] describing
///   every defect (diagnostics capped, counts exact).
pub fn ingest(text: &str, policy: IngestPolicy) -> Result<(Dataset, IngestReport), CsvError> {
    if policy == IngestPolicy::Strict {
        let data = from_csv(text)?;
        let mut report = IngestReport::default();
        report.rows_read = data.iter().map(|t| t.len()).sum();
        report.rows_kept = report.rows_read;
        report.trajectories_kept = data.len();
        return Ok((data, report));
    }

    let mut report = IngestReport::default();
    let mut lines = text.lines().enumerate().peekable();
    match lines.peek() {
        Some((_, h)) if h.trim() == HEADER => {
            lines.next();
        }
        // No header: note it and fall through — the first line may still
        // be a recoverable data row (e.g. after a shuffled export).
        _ => report.record(1, Defect::MissingHeader),
    }

    // Phase 1: structural row parse, grouped into runs of equal traj_id.
    let mut runs: Vec<(u64, Vec<ParsedRow>)> = Vec::new();
    for (idx, raw) in lines {
        let line = idx + 1;
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        report.rows_read += 1;
        let fields: Vec<&str> = raw.split(',').collect();
        if fields.len() != 5 {
            report.record(line, Defect::WrongFieldCount);
            continue;
        }
        let parsed = (
            fields[0].trim().parse::<u64>(),
            fields[1].trim().parse::<usize>(),
            fields[2].trim().parse::<f64>(),
            fields[3].trim().parse::<f64>(),
            fields[4].trim().parse::<f64>(),
        );
        let (Ok(traj_id), Ok(snapshot), Ok(x), Ok(y), Ok(sigma)) =
            (parsed.0, parsed.1, parsed.2, parsed.3, parsed.4)
        else {
            report.record(line, Defect::BadNumber);
            continue;
        };
        let row = ParsedRow {
            line,
            snapshot,
            x,
            y,
            sigma,
        };
        match runs.last_mut() {
            Some((id, rows)) if *id == traj_id => rows.push(row),
            prev => {
                if let Some((prev_id, _)) = prev {
                    if traj_id < *prev_id {
                        report.record(line, Defect::IdRegression);
                    }
                }
                runs.push((traj_id, vec![row]));
            }
        }
    }

    // Phase 2: per-trajectory ordering/validity under the policy.
    let mut trajectories: Vec<Trajectory> = Vec::new();
    for (_, mut rows) in runs {
        let points = match policy {
            IngestPolicy::Skip => {
                let mut points: Vec<SnapshotPoint> = Vec::new();
                for r in &rows {
                    if r.snapshot != points.len() {
                        report.record(r.line, Defect::OutOfOrder);
                        continue;
                    }
                    match SnapshotPoint::new(Point2::new(r.x, r.y), r.sigma) {
                        Some(sp) => {
                            points.push(sp);
                            report.rows_kept += 1;
                        }
                        None => report.record(r.line, Defect::InvalidValue),
                    }
                }
                points
            }
            IngestPolicy::Repair => {
                let sorted = rows.windows(2).all(|w| w[0].snapshot <= w[1].snapshot);
                if !sorted {
                    report.record(rows[0].line, Defect::OutOfOrder);
                    rows.sort_by_key(|r| r.snapshot); // stable: ties keep input order
                }
                let mut points: Vec<SnapshotPoint> = Vec::new();
                let mut prev_snapshot = None;
                for r in &rows {
                    if prev_snapshot == Some(r.snapshot) {
                        // Ambiguous duplicates keep the first occurrence.
                        report.record(r.line, Defect::DuplicateSnapshot);
                        continue;
                    }
                    prev_snapshot = Some(r.snapshot);
                    let mean = Point2::new(r.x, r.y);
                    if SnapshotPoint::new(mean, r.sigma).is_none() {
                        report.record(r.line, Defect::InvalidValue);
                    }
                    // Staged raw; the sanitizer below repairs the values.
                    points.push(SnapshotPoint {
                        mean,
                        sigma: r.sigma,
                    });
                    report.rows_kept += 1;
                }
                points
            }
            IngestPolicy::Strict => unreachable!("handled above"),
        };
        if !points.is_empty() {
            trajectories.push(Trajectory::from_raw_points(points));
        }
    }

    let mut data = Dataset::from_trajectories(trajectories);
    if policy == IngestPolicy::Repair {
        report.sanitize = Some(sanitize(&mut data));
    }
    report.trajectories_kept = data.len();
    Ok((data, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let t1 = Trajectory::new(vec![
            SnapshotPoint::new(Point2::new(0.1, 0.2), 0.0).unwrap(),
            SnapshotPoint::new(Point2::new(0.30000000000000004, 0.4), 0.0125).unwrap(),
        ])
        .unwrap();
        let t2 = Trajectory::new(vec![
            SnapshotPoint::new(Point2::new(-1.5e-3, 2.25), 0.5).unwrap()
        ])
        .unwrap();
        Dataset::from_trajectories(vec![t1, t2])
    }

    #[test]
    fn round_trip_is_exact() {
        let d = sample();
        let csv = to_csv(&d);
        let back = from_csv(&csv).unwrap();
        assert_eq!(d, back, "CSV round-trip must be bit-exact");
    }

    #[test]
    fn empty_dataset_round_trips() {
        let d = Dataset::new();
        let back = from_csv(&to_csv(&d)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(from_csv("0,0,1.0,2.0,0.1\n"), Err(CsvError::BadHeader));
        assert_eq!(from_csv(""), Err(CsvError::BadHeader));
    }

    #[test]
    fn rejects_wrong_field_count() {
        let text = format!("{HEADER}\n0,0,1.0,2.0\n");
        assert_eq!(from_csv(&text), Err(CsvError::WrongFieldCount { line: 2 }));
    }

    #[test]
    fn rejects_bad_numbers() {
        let text = format!("{HEADER}\n0,0,one,2.0,0.1\n");
        assert_eq!(
            from_csv(&text),
            Err(CsvError::BadNumber {
                line: 2,
                field: "x"
            })
        );
    }

    #[test]
    fn rejects_shuffled_snapshots() {
        let text = format!("{HEADER}\n0,1,1.0,2.0,0.1\n");
        assert_eq!(from_csv(&text), Err(CsvError::BadOrdering { line: 2 }));
        let text = format!("{HEADER}\n0,0,1.0,2.0,0.1\n0,2,1.0,2.0,0.1\n");
        assert_eq!(from_csv(&text), Err(CsvError::BadOrdering { line: 3 }));
    }

    #[test]
    fn rejects_backwards_trajectory_ids() {
        let text = format!("{HEADER}\n5,0,1.0,2.0,0.1\n3,0,1.0,2.0,0.1\n");
        assert_eq!(from_csv(&text), Err(CsvError::BadOrdering { line: 3 }));
    }

    #[test]
    fn rejects_invalid_snapshots() {
        let text = format!("{HEADER}\n0,0,1.0,2.0,-0.5\n");
        assert_eq!(from_csv(&text), Err(CsvError::InvalidSnapshot { line: 2 }));
        let text = format!("{HEADER}\n0,0,inf,2.0,0.5\n");
        assert_eq!(from_csv(&text), Err(CsvError::InvalidSnapshot { line: 2 }));
    }

    #[test]
    fn tolerates_blank_lines_and_whitespace() {
        let text = format!("{HEADER}\n\n0, 0, 1.0, 2.0, 0.1\n\n");
        let d = from_csv(&text).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.trajectories()[0].len(), 1);
    }

    #[test]
    fn non_contiguous_trajectory_ids_are_allowed() {
        // Ids only need to be non-decreasing; gaps are fine (filtered
        // exports).
        let text = format!("{HEADER}\n1,0,1.0,2.0,0.1\n7,0,3.0,4.0,0.2\n");
        let d = from_csv(&text).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ingest_strict_matches_from_csv() {
        let d = sample();
        let csv = to_csv(&d);
        let (back, report) = ingest(&csv, IngestPolicy::Strict).unwrap();
        assert_eq!(d, back);
        assert!(report.is_clean());
        assert_eq!(report.rows_read, 3);
        assert_eq!(report.rows_kept, 3);
        assert_eq!(report.trajectories_kept, 2);

        let bad = format!("{HEADER}\n0,0,one,2.0,0.1\n");
        assert!(ingest(&bad, IngestPolicy::Strict).is_err());
    }

    #[test]
    fn ingest_skip_drops_bad_rows() {
        let text = format!(
            "{HEADER}\n\
             0,0,1.0,2.0,0.1\n\
             0,1,garbage,2.0,0.1\n\
             0,too,few\n\
             0,2,3.0,4.0,0.1\n"
        );
        let (d, report) = ingest(&text, IngestPolicy::Skip).unwrap();
        assert_eq!(d.len(), 1);
        // The dropped row shifted expectations: snapshot 2 no longer lines
        // up, so Skip keeps only the prefix.
        assert_eq!(report.count(Defect::BadNumber), 1);
        assert_eq!(report.count(Defect::WrongFieldCount), 1);
        assert_eq!(report.count(Defect::OutOfOrder), 1);
        assert_eq!(report.rows_read, 4);
        assert_eq!(report.rows_kept, 1);
        assert!(!report.is_clean());
        assert_eq!(report.diagnostics().len(), 3);
    }

    #[test]
    fn ingest_skip_drops_invalid_values() {
        let text = format!("{HEADER}\n0,0,1.0,2.0,0.1\n0,1,1.5,2.0,-0.5\n");
        let (d, report) = ingest(&text, IngestPolicy::Skip).unwrap();
        assert_eq!(d.trajectories()[0].len(), 1);
        assert_eq!(report.count(Defect::InvalidValue), 1);
    }

    #[test]
    fn ingest_without_header_is_recoverable() {
        let text = "0,0,1.0,2.0,0.1\n0,1,2.0,2.0,0.1\n";
        let (d, report) = ingest(text, IngestPolicy::Skip).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.trajectories()[0].len(), 2);
        assert_eq!(report.count(Defect::MissingHeader), 1);
    }

    #[test]
    fn ingest_repair_reorders_and_dedupes() {
        let text = format!(
            "{HEADER}\n\
             0,1,1.0,1.0,0.1\n\
             0,0,0.0,0.0,0.1\n\
             0,2,2.0,2.0,0.1\n\
             0,2,9.0,9.0,0.1\n"
        );
        let (d, report) = ingest(&text, IngestPolicy::Repair).unwrap();
        assert_eq!(d.len(), 1);
        let pts = d.trajectories()[0].points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].mean, Point2::new(0.0, 0.0));
        assert_eq!(pts[1].mean, Point2::new(1.0, 1.0));
        // First occurrence wins on a duplicate index.
        assert_eq!(pts[2].mean, Point2::new(2.0, 2.0));
        assert_eq!(report.count(Defect::OutOfOrder), 1);
        assert_eq!(report.count(Defect::DuplicateSnapshot), 1);
    }

    #[test]
    fn ingest_repair_sanitizes_values() {
        let text = format!(
            "{HEADER}\n\
             0,0,0.0,0.0,0.1\n\
             0,1,NaN,NaN,0.1\n\
             0,2,2.0,2.0,-0.5\n"
        );
        let (d, report) = ingest(&text, IngestPolicy::Repair).unwrap();
        let pts = d.trajectories()[0].points();
        assert_eq!(pts.len(), 3);
        assert!((pts[1].mean.x - 1.0).abs() < 1e-12);
        assert_eq!(pts[2].sigma, 0.0);
        let s = report.sanitize.expect("repair runs the sanitizer");
        assert_eq!(s.coords_interpolated, 1);
        assert_eq!(s.sigmas_clamped, 1);
        assert_eq!(report.count(Defect::InvalidValue), 2);
        // Strict re-ingest of the repaired dataset succeeds.
        assert!(from_csv(&to_csv(&d)).is_ok());
    }

    #[test]
    fn ingest_id_regression_starts_new_trajectory() {
        let text = format!("{HEADER}\n5,0,1.0,2.0,0.1\n3,0,3.0,4.0,0.1\n");
        let (d, report) = ingest(&text, IngestPolicy::Skip).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(report.count(Defect::IdRegression), 1);
    }

    #[test]
    fn ingest_diagnostics_are_capped_but_counts_exact() {
        let mut text = format!("{HEADER}\n");
        for _ in 0..100 {
            text.push_str("0,0,bad,0.0,0.1\n");
        }
        let (_, report) = ingest(&text, IngestPolicy::Skip).unwrap();
        assert_eq!(report.count(Defect::BadNumber), 100);
        assert!(report.truncated);
        assert_eq!(report.diagnostics().len(), MAX_DIAGNOSTICS_PER_DEFECT);
    }

    #[test]
    fn ingest_report_display_reads_well() {
        let text = format!("{HEADER}\n0,0,1.0,2.0,0.1\n0,1,bad,2.0,0.1\n");
        let (_, report) = ingest(&text, IngestPolicy::Skip).unwrap();
        let s = report.to_string();
        assert!(s.contains("ingested 1/2 rows"), "got: {s}");
        assert!(s.contains("unparseable number"), "got: {s}");
    }

    #[test]
    fn ingest_policy_parses_from_str() {
        assert_eq!("strict".parse(), Ok(IngestPolicy::Strict));
        assert_eq!("skip".parse(), Ok(IngestPolicy::Skip));
        assert_eq!("repair".parse(), Ok(IngestPolicy::Repair));
        assert!("lenient".parse::<IngestPolicy>().is_err());
    }
}
