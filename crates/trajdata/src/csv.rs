//! Plain-text CSV interchange for trajectory datasets.
//!
//! Real deployments rarely speak JSON for bulk trace data; this module
//! provides a dependency-free CSV codec with the schema
//!
//! ```text
//! traj_id,snapshot,x,y,sigma
//! 0,0,0.125,0.625,0.0
//! 0,1,0.375,0.625,0.006
//! ```
//!
//! Rows must be grouped by `traj_id` with `snapshot` increasing from 0
//! within each trajectory (the on-disk order *is* the snapshot order;
//! the indices exist to catch truncated or shuffled files).

use crate::dataset::Dataset;
use crate::snapshot::SnapshotPoint;
use crate::trajectory::Trajectory;
use std::fmt;
use trajgeo::Point2;

/// Errors reading CSV trajectory data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The header row was missing or not the expected schema.
    BadHeader,
    /// A data row did not have exactly five fields.
    WrongFieldCount {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
    },
    /// `snapshot` indices were not consecutive from 0 within a trajectory,
    /// or `traj_id`s went backwards.
    BadOrdering {
        /// 1-based line number.
        line: usize,
    },
    /// A snapshot had non-finite coordinates or a negative sigma.
    InvalidSnapshot {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::BadHeader => {
                write!(f, "expected header 'traj_id,snapshot,x,y,sigma'")
            }
            CsvError::WrongFieldCount { line } => {
                write!(f, "line {line}: expected 5 comma-separated fields")
            }
            CsvError::BadNumber { line, field } => {
                write!(f, "line {line}: field '{field}' is not a valid number")
            }
            CsvError::BadOrdering { line } => {
                write!(f, "line {line}: snapshots/trajectories out of order")
            }
            CsvError::InvalidSnapshot { line } => {
                write!(f, "line {line}: non-finite coordinates or negative sigma")
            }
        }
    }
}

impl std::error::Error for CsvError {}

const HEADER: &str = "traj_id,snapshot,x,y,sigma";

/// Serializes a dataset to CSV (including the header row).
pub fn to_csv(data: &Dataset) -> String {
    let mut out = String::with_capacity(32 * (1 + data.iter().map(|t| t.len()).sum::<usize>()));
    out.push_str(HEADER);
    out.push('\n');
    for (ti, traj) in data.iter().enumerate() {
        for (si, sp) in traj.points().iter().enumerate() {
            // 17 significant digits round-trip f64 exactly.
            out.push_str(&format!(
                "{ti},{si},{:.17e},{:.17e},{:.17e}\n",
                sp.mean.x, sp.mean.y, sp.sigma
            ));
        }
    }
    out
}

/// Parses CSV produced by [`to_csv`] (or any file with the same schema).
pub fn from_csv(text: &str) -> Result<Dataset, CsvError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        _ => return Err(CsvError::BadHeader),
    }

    let mut trajectories: Vec<Trajectory> = Vec::new();
    let mut current: Vec<SnapshotPoint> = Vec::new();
    let mut current_id: Option<u64> = None;

    for (idx, raw) in lines {
        let line = idx + 1; // 1-based, counting the header as line 1
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let fields: Vec<&str> = raw.split(',').collect();
        if fields.len() != 5 {
            return Err(CsvError::WrongFieldCount { line });
        }
        let traj_id: u64 = fields[0].trim().parse().map_err(|_| CsvError::BadNumber {
            line,
            field: "traj_id",
        })?;
        let snapshot: usize = fields[1].trim().parse().map_err(|_| CsvError::BadNumber {
            line,
            field: "snapshot",
        })?;
        let x: f64 = fields[2]
            .trim()
            .parse()
            .map_err(|_| CsvError::BadNumber { line, field: "x" })?;
        let y: f64 = fields[3]
            .trim()
            .parse()
            .map_err(|_| CsvError::BadNumber { line, field: "y" })?;
        let sigma: f64 = fields[4].trim().parse().map_err(|_| CsvError::BadNumber {
            line,
            field: "sigma",
        })?;

        match current_id {
            Some(id) if id == traj_id => {
                if snapshot != current.len() {
                    return Err(CsvError::BadOrdering { line });
                }
            }
            Some(id) => {
                if traj_id < id || snapshot != 0 {
                    return Err(CsvError::BadOrdering { line });
                }
                trajectories.push(
                    Trajectory::new(std::mem::take(&mut current)).expect("validated per-row"),
                );
                current_id = Some(traj_id);
            }
            None => {
                if snapshot != 0 {
                    return Err(CsvError::BadOrdering { line });
                }
                current_id = Some(traj_id);
            }
        }
        let sp = SnapshotPoint::new(Point2::new(x, y), sigma)
            .ok_or(CsvError::InvalidSnapshot { line })?;
        current.push(sp);
    }
    if current_id.is_some() {
        trajectories.push(Trajectory::new(current).expect("validated per-row"));
    }
    Ok(Dataset::from_trajectories(trajectories))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let t1 = Trajectory::new(vec![
            SnapshotPoint::new(Point2::new(0.1, 0.2), 0.0).unwrap(),
            SnapshotPoint::new(Point2::new(0.30000000000000004, 0.4), 0.0125).unwrap(),
        ])
        .unwrap();
        let t2 = Trajectory::new(vec![
            SnapshotPoint::new(Point2::new(-1.5e-3, 2.25), 0.5).unwrap()
        ])
        .unwrap();
        Dataset::from_trajectories(vec![t1, t2])
    }

    #[test]
    fn round_trip_is_exact() {
        let d = sample();
        let csv = to_csv(&d);
        let back = from_csv(&csv).unwrap();
        assert_eq!(d, back, "CSV round-trip must be bit-exact");
    }

    #[test]
    fn empty_dataset_round_trips() {
        let d = Dataset::new();
        let back = from_csv(&to_csv(&d)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(from_csv("0,0,1.0,2.0,0.1\n"), Err(CsvError::BadHeader));
        assert_eq!(from_csv(""), Err(CsvError::BadHeader));
    }

    #[test]
    fn rejects_wrong_field_count() {
        let text = format!("{HEADER}\n0,0,1.0,2.0\n");
        assert_eq!(from_csv(&text), Err(CsvError::WrongFieldCount { line: 2 }));
    }

    #[test]
    fn rejects_bad_numbers() {
        let text = format!("{HEADER}\n0,0,one,2.0,0.1\n");
        assert_eq!(
            from_csv(&text),
            Err(CsvError::BadNumber {
                line: 2,
                field: "x"
            })
        );
    }

    #[test]
    fn rejects_shuffled_snapshots() {
        let text = format!("{HEADER}\n0,1,1.0,2.0,0.1\n");
        assert_eq!(from_csv(&text), Err(CsvError::BadOrdering { line: 2 }));
        let text = format!("{HEADER}\n0,0,1.0,2.0,0.1\n0,2,1.0,2.0,0.1\n");
        assert_eq!(from_csv(&text), Err(CsvError::BadOrdering { line: 3 }));
    }

    #[test]
    fn rejects_backwards_trajectory_ids() {
        let text = format!("{HEADER}\n5,0,1.0,2.0,0.1\n3,0,1.0,2.0,0.1\n");
        assert_eq!(from_csv(&text), Err(CsvError::BadOrdering { line: 3 }));
    }

    #[test]
    fn rejects_invalid_snapshots() {
        let text = format!("{HEADER}\n0,0,1.0,2.0,-0.5\n");
        assert_eq!(from_csv(&text), Err(CsvError::InvalidSnapshot { line: 2 }));
        let text = format!("{HEADER}\n0,0,inf,2.0,0.5\n");
        assert_eq!(from_csv(&text), Err(CsvError::InvalidSnapshot { line: 2 }));
    }

    #[test]
    fn tolerates_blank_lines_and_whitespace() {
        let text = format!("{HEADER}\n\n0, 0, 1.0, 2.0, 0.1\n\n");
        let d = from_csv(&text).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.trajectories()[0].len(), 1);
    }

    #[test]
    fn non_contiguous_trajectory_ids_are_allowed() {
        // Ids only need to be non-decreasing; gaps are fine (filtered
        // exports).
        let text = format!("{HEADER}\n1,0,1.0,2.0,0.1\n7,0,3.0,4.0,0.2\n");
        let d = from_csv(&text).unwrap();
        assert_eq!(d.len(), 2);
    }
}
