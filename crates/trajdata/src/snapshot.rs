//! A single imprecise observation: `(l_i, σ_i)`.

use trajgeo::stats::prob_within_delta;
use trajgeo::Point2;

/// The state of one object at one synchronized snapshot: the true location
/// is distributed as `N(mean, sigma²·I)` (§3.1).
///
/// `sigma == 0` is allowed and means the location is known exactly (e.g. a
/// snapshot that coincides with an actual report).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SnapshotPoint {
    /// Expected (predicted) location `l_i`.
    pub mean: Point2,
    /// Standard deviation `σ_i` of each marginal (non-negative).
    pub sigma: f64,
}

impl SnapshotPoint {
    /// Creates a snapshot point. Returns `None` for non-finite coordinates
    /// or a negative/non-finite sigma.
    pub fn new(mean: Point2, sigma: f64) -> Option<SnapshotPoint> {
        if mean.is_finite() && sigma.is_finite() && sigma >= 0.0 {
            Some(SnapshotPoint { mean, sigma })
        } else {
            None
        }
    }

    /// An exactly-known location (σ = 0).
    pub fn exact(mean: Point2) -> SnapshotPoint {
        SnapshotPoint { mean, sigma: 0.0 }
    }

    /// The paper's `Prob(l_i, σ_i, p, δ)`: probability that the true
    /// location is within δ of `p`.
    #[inline]
    pub fn prob_near(&self, p: Point2, delta: f64) -> f64 {
        prob_within_delta(self.mean, self.sigma, p, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(SnapshotPoint::new(Point2::new(0.0, 0.0), 0.0).is_some());
        assert!(SnapshotPoint::new(Point2::new(0.0, 0.0), -0.1).is_none());
        assert!(SnapshotPoint::new(Point2::new(f64::NAN, 0.0), 0.1).is_none());
        assert!(SnapshotPoint::new(Point2::new(0.0, 0.0), f64::INFINITY).is_none());
    }

    #[test]
    fn prob_near_peaks_at_mean() {
        let s = SnapshotPoint::new(Point2::new(0.5, 0.5), 0.05).unwrap();
        let at_mean = s.prob_near(Point2::new(0.5, 0.5), 0.02);
        let off = s.prob_near(Point2::new(0.6, 0.5), 0.02);
        assert!(at_mean > off);
        assert!(off > 0.0);
    }

    #[test]
    fn exact_point_probability_is_indicator() {
        let s = SnapshotPoint::exact(Point2::new(1.0, 1.0));
        assert_eq!(s.prob_near(Point2::new(1.01, 1.0), 0.05), 1.0);
        assert_eq!(s.prob_near(Point2::new(2.0, 1.0), 0.05), 0.0);
    }

    /// `prob_near` is a pure delegate: there is exactly one probability
    /// kernel in the workspace (`trajgeo::stats::prob_within_delta`) and
    /// every caller gets its bits. A CI grep-guard enforces that no
    /// second `erf` call site appears outside `crates/trajgeo`.
    #[test]
    fn prob_near_is_bit_identical_to_the_trajgeo_kernel() {
        for (mx, my, sigma) in [
            (0.0, 0.0, 0.0),
            (0.5, 0.25, 1e-6),
            (0.5, 0.25, 0.05),
            (-3.0, 7.5, 1.0),
            (100.0, -40.0, 4.75),
        ] {
            let s = SnapshotPoint::new(Point2::new(mx, my), sigma).unwrap();
            for (px, py, delta) in [
                (0.0, 0.0, 0.0),
                (0.5, 0.25, 0.1),
                (0.52, 0.2, 0.01),
                (-2.0, 8.0, 2.5),
                (99.0, -39.0, 0.5),
            ] {
                let p = Point2::new(px, py);
                assert_eq!(
                    s.prob_near(p, delta).to_bits(),
                    prob_within_delta(s.mean, s.sigma, p, delta).to_bits(),
                    "({mx},{my},{sigma}) vs ({px},{py},{delta})"
                );
            }
        }
    }
}
