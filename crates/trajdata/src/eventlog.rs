//! Append-only trajectory event log — the interchange format between
//! workload generators and the `trajstream` sliding-window miner.
//!
//! The format is line-oriented text so a stream can be *tailed* without
//! any framing machinery (the target container is offline and single-core,
//! so there is no async runtime to lean on — a byte offset and a line
//! parser are the whole consumer):
//!
//! ```text
//! trajstream-events v1
//! t <x> <y> <sigma> <x> <y> <sigma> ...
//! t ...
//! ```
//!
//! One `t` line is one *arrival event*: a complete trajectory, as
//! `(mean.x, mean.y, sigma)` triples. Values are written with Rust's `{}`
//! float formatting, which is the shortest representation that parses back
//! to the identical bits — so a replayed log reproduces the generating
//! dataset exactly, and streamed results can be diffed bit-for-bit against
//! batch mining. Blank lines and `#` comments are ignored.

use crate::dataset::Dataset;
use crate::snapshot::SnapshotPoint;
use crate::trajectory::{Trajectory, TrajectoryError};
use std::fmt;
use std::io::BufRead;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use trajgeo::Point2;
#[allow(unused_imports)] // referenced by intra-doc links on `recover_event_log`
use trajio::tail::TailVerdict;
use trajio::tail::{RecordStep, TailScan};

/// First line of every event log.
pub const EVENTS_VERSION_LINE: &str = "trajstream-events v1";

/// Why an event log could not be parsed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EventLogError {
    /// The first non-blank line is not [`EVENTS_VERSION_LINE`].
    Version {
        /// What was found instead.
        found: String,
    },
    /// A line that could not be parsed.
    Line {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A structurally valid line describing an invalid trajectory.
    Trajectory {
        /// 1-based line number.
        line: usize,
        /// The underlying validation error.
        source: TrajectoryError,
    },
}

impl fmt::Display for EventLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventLogError::Version { found } => write!(
                f,
                "not a trajectory event log: first line is '{found}' (expected '{EVENTS_VERSION_LINE}')"
            ),
            EventLogError::Line { line, message } => {
                write!(f, "event log line {line}: {message}")
            }
            EventLogError::Trajectory { line, .. } => {
                write!(f, "event log line {line}: invalid trajectory")
            }
        }
    }
}

impl std::error::Error for EventLogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EventLogError::Trajectory { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Serializes a dataset as an event log, one arrival per trajectory in
/// dataset order. Round-trips exactly through [`parse_event_log`].
pub fn write_event_log(data: &Dataset) -> String {
    let mut out = String::from(EVENTS_VERSION_LINE);
    out.push('\n');
    for traj in data.iter() {
        append_event(&mut out, traj);
    }
    out
}

/// Appends one arrival event line for `traj` to `out` (no version line) —
/// the incremental producer used by live emitters.
pub fn append_event(out: &mut String, traj: &Trajectory) {
    out.push('t');
    for sp in traj.points() {
        use fmt::Write;
        write!(out, " {} {} {}", sp.mean.x, sp.mean.y, sp.sigma)
            .expect("writing to a String cannot fail");
    }
    out.push('\n');
}

/// Parses a complete event log (version line first) into arrival events in
/// order.
pub fn parse_event_log(text: &str) -> Result<Vec<Trajectory>, EventLogError> {
    match trajio::first_content_line(text, true) {
        Some(EVENTS_VERSION_LINE) => {}
        other => {
            return Err(EventLogError::Version {
                found: other.unwrap_or("").to_string(),
            })
        }
    }
    let mut events = Vec::new();
    let mut version_seen = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !version_seen {
            // The sniffed version line itself.
            version_seen = true;
            continue;
        }
        if let Some(traj) = parse_event_line(line, idx + 1)? {
            events.push(traj);
        }
    }
    Ok(events)
}

/// Parses one (already version-checked) log line. Returns `Ok(None)` for
/// blank lines and comments, so a tailing consumer can feed every appended
/// line through unconditionally.
pub fn parse_event_line(raw: &str, line_no: usize) -> Result<Option<Trajectory>, EventLogError> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut fields = line.split_whitespace();
    match fields.next() {
        Some("t") => {}
        Some(other) => {
            return Err(EventLogError::Line {
                line: line_no,
                message: format!("unknown event kind '{other}'"),
            })
        }
        None => return Ok(None),
    }
    let values: Vec<f64> = fields
        .map(|s| {
            s.parse::<f64>().map_err(|_| EventLogError::Line {
                line: line_no,
                message: format!("'{s}' is not a number"),
            })
        })
        .collect::<Result<_, _>>()?;
    if values.is_empty() || !values.len().is_multiple_of(3) {
        return Err(EventLogError::Line {
            line: line_no,
            message: format!(
                "expected (x, y, sigma) triples, found {} values",
                values.len()
            ),
        });
    }
    // Build unvalidated and let `Trajectory::new` report the offending
    // snapshot index.
    let points: Vec<SnapshotPoint> = values
        .chunks_exact(3)
        .map(|c| SnapshotPoint {
            mean: Point2::new(c[0], c[1]),
            sigma: c[2],
        })
        .collect();
    let traj = Trajectory::new(points).map_err(|source| EventLogError::Trajectory {
        line: line_no,
        source,
    })?;
    Ok(Some(traj))
}

/// Why tailing an event log stopped with an error.
#[derive(Debug)]
pub enum TailError {
    /// Reading the underlying file failed.
    Io(std::io::Error),
    /// A complete line could not be parsed.
    Log(EventLogError),
}

impl fmt::Display for TailError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TailError::Io(_) => write!(f, "event log read failed"),
            TailError::Log(_) => write!(f, "event log tail"),
        }
    }
}

impl std::error::Error for TailError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TailError::Io(e) => Some(e),
            TailError::Log(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for TailError {
    fn from(e: std::io::Error) -> Self {
        TailError::Io(e)
    }
}

impl From<EventLogError> for TailError {
    fn from(e: EventLogError) -> Self {
        TailError::Log(e)
    }
}

/// A `tail -f`-style reader over any line-oriented log file — the raw
/// transport layer under [`EventTailer`] and the `trajfeed` file
/// sources (the dead-reckoning log has a different protocol on top but
/// identical follow/torn-line semantics, so they share this reader).
///
/// Semantics, version-agnostic (protocol layers interpret content):
///
/// * at end-of-file a following reader sleeps one poll interval and
///   retries — a writer appending to the file wakes it on the next poll;
/// * a partial line (no terminating newline yet) is never surfaced: the
///   reader accumulates until the newline arrives, so a torn append is
///   invisible to the consumer;
/// * the `stop` flag ends the tail cleanly at the next poll, which is
///   how SIGINT/SIGTERM drains reach a blocked reader without signals
///   interrupting I/O.
pub struct LineFollower {
    reader: std::io::BufReader<std::fs::File>,
    line: String,
    line_no: usize,
    follow: bool,
    poll: Duration,
}

impl LineFollower {
    /// Opens `path` for tailing. `follow` selects live-tail semantics
    /// (sleep-and-retry at EOF); `poll` is the sleep interval between
    /// polls.
    pub fn open(
        path: &std::path::Path,
        follow: bool,
        poll: Duration,
    ) -> std::io::Result<LineFollower> {
        Ok(LineFollower {
            reader: std::io::BufReader::new(std::fs::File::open(path)?),
            line: String::new(),
            line_no: 0,
            follow,
            poll,
        })
    }

    /// 1-based number of the last line consumed.
    pub fn line_no(&self) -> usize {
        self.line_no
    }

    /// Returns the next complete line (trailing `\n`/`\r` stripped), or
    /// `Ok(None)` when the file ended: end-of-file in replay mode, or
    /// `stop` observed while waiting for more bytes.
    pub fn next_line(&mut self, stop: &AtomicBool) -> std::io::Result<Option<&str>> {
        self.line.clear();
        let n = self.reader.read_line(&mut self.line)?;
        if n == 0 {
            if !self.follow || stop.load(Ordering::SeqCst) {
                return Ok(None);
            }
            loop {
                std::thread::sleep(self.poll);
                if stop.load(Ordering::SeqCst) {
                    return Ok(None);
                }
                let m = self.reader.read_line(&mut self.line)?;
                if m > 0 {
                    break;
                }
            }
        }
        // In follow mode a partial line may arrive before its newline;
        // wait for the rest rather than surfacing half a record. (In
        // replay mode a final unterminated line is surfaced as-is.)
        if self.follow && !self.line.ends_with('\n') {
            loop {
                if stop.load(Ordering::SeqCst) {
                    // The torn tail is dropped; a resumed reader re-reads
                    // the whole line once it is complete.
                    return Ok(None);
                }
                std::thread::sleep(self.poll);
                let mut rest = String::new();
                let m = self.reader.read_line(&mut rest)?;
                self.line.push_str(&rest);
                if m > 0 && self.line.ends_with('\n') {
                    break;
                }
            }
        }
        self.line_no += 1;
        Ok(Some(self.line.trim_end_matches(['\n', '\r'])))
    }
}

/// A `tail -f`-style reader over a live event log: [`LineFollower`]
/// transport plus the event-log protocol (version line, `# eof`
/// terminator, `t …` arrival records).
///
/// * the first content line must be [`EVENTS_VERSION_LINE`] (blank lines
///   and comments before it are fine, matching [`parse_event_log`]);
/// * a `# eof` comment line is the producer's explicit terminator
///   (follow mode only — replays treat it as an ordinary comment);
/// * follow/torn-line/stop semantics are the transport's.
pub struct EventTailer {
    lines: LineFollower,
    seen_version: bool,
    follow: bool,
}

impl EventTailer {
    /// Opens `path` for tailing. `follow` selects live-tail semantics
    /// (sleep-and-retry at EOF, honour `# eof`); `poll` is the sleep
    /// interval between polls.
    pub fn open(
        path: &std::path::Path,
        follow: bool,
        poll: Duration,
    ) -> Result<EventTailer, TailError> {
        Ok(EventTailer {
            lines: LineFollower::open(path, follow, poll)?,
            seen_version: false,
            follow,
        })
    }

    /// 1-based number of the last line consumed.
    pub fn line_no(&self) -> usize {
        self.lines.line_no()
    }

    /// Returns the next arrival event, or `Ok(None)` when the log ended:
    /// end-of-file in replay mode, a `# eof` terminator in follow mode,
    /// or `stop` observed while waiting for more bytes. Blank lines and
    /// comments are skipped internally.
    pub fn next_event(&mut self, stop: &AtomicBool) -> Result<Option<Trajectory>, TailError> {
        loop {
            let Some(raw) = self.lines.next_line(stop)? else {
                return Ok(None);
            };
            let raw = raw.to_string();
            let line_no = self.lines.line_no();
            let content = raw.trim();
            if !self.seen_version {
                if content.is_empty() || content.starts_with('#') {
                    continue;
                }
                if content != EVENTS_VERSION_LINE {
                    return Err(EventLogError::Version {
                        found: content.to_string(),
                    }
                    .into());
                }
                self.seen_version = true;
                continue;
            }
            if self.follow && content == "# eof" {
                return Ok(None);
            }
            if let Some(traj) = parse_event_line(&raw, line_no)? {
                return Ok(Some(traj));
            }
        }
    }
}

/// The crash-recovery view of an event log: the committed events plus
/// the tail diagnosis from the shared [`trajio::tail`] scanner.
#[derive(Debug, Clone)]
pub struct EventLogRecovery {
    /// Every event in the committed (pre-tear) prefix, in log order.
    pub events: Vec<Trajectory>,
    /// Committed length, record count, and tail verdict. Record counts
    /// include comment/blank lines; `events.len()` is the event count.
    pub scan: TailScan,
}

/// Recovers the committed prefix of a possibly crash-torn event log.
///
/// Where [`parse_event_log`] treats a torn or garbage tail as a fatal
/// parse error, this scanner — built on [`trajio::tail::recover`], the
/// same primitive trajdb segments use — keeps every complete, valid
/// event before the damage and reports a typed [`TailVerdict`]:
///
/// * a final line with no terminating newline is a torn append
///   ([`TailVerdict::TornTruncated`]);
/// * a complete line that does not parse is foreign bytes
///   ([`TailVerdict::Garbage`]);
/// * otherwise the log is [`TailVerdict::Clean`].
///
/// Only a missing or torn *version line* remains a hard error: such a
/// file has no committed prefix to recover.
pub fn recover_event_log(text: &str) -> Result<EventLogRecovery, EventLogError> {
    match trajio::first_content_line(text, true) {
        Some(EVENTS_VERSION_LINE) => {}
        other => {
            return Err(EventLogError::Version {
                found: other.unwrap_or("").to_string(),
            })
        }
    }
    // Scan starts after the version line; everything before it (blanks,
    // comments) was validated by the sniff above. Walk lines with byte
    // offsets rather than `str::find`, so a comment quoting the version
    // string cannot confuse the split.
    let mut body_start = text.len();
    let mut offset = 0usize;
    for line in text.split_inclusive('\n') {
        let content = line.trim();
        if !(content.is_empty() || content.starts_with('#')) {
            // The sniff guarantees this is the version line. If it has
            // no trailing newline the body is empty (clean tail) —
            // `parse_event_log` accepts this shape too.
            body_start = if line.ends_with('\n') {
                offset + line.len()
            } else {
                text.len()
            };
            break;
        }
        offset += line.len();
    }
    let body = &text[body_start..];

    let mut events = Vec::new();
    let step = |rest: &[u8]| -> RecordStep {
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            // No terminating newline: a torn append, even if the prefix
            // happens to parse (framing is the newline).
            return RecordStep::Incomplete;
        };
        let Ok(line) = std::str::from_utf8(&rest[..nl]) else {
            return RecordStep::Corrupt;
        };
        match parse_event_line(line.trim_end_matches('\r'), 0) {
            Ok(Some(traj)) => {
                events.push(traj);
                RecordStep::Complete(nl + 1)
            }
            Ok(None) => RecordStep::Complete(nl + 1),
            Err(_) => RecordStep::Corrupt,
        }
    };
    let mut scan = trajio::tail::recover(body.as_bytes(), step);
    scan.committed_len += body_start;
    Ok(EventLogRecovery { events, scan })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        (0..4)
            .map(|i| {
                Trajectory::new(
                    (0..3)
                        .map(|j| {
                            SnapshotPoint::new(
                                Point2::new(
                                    0.1 + i as f64 * 0.071 + j as f64 / 3.0,
                                    (0.3 + i as f64 * 0.17).fract(),
                                ),
                                0.01 + j as f64 * 0.013,
                            )
                            .unwrap()
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn round_trips_bit_exactly() {
        let data = sample();
        let text = write_event_log(&data);
        let events = parse_event_log(&text).unwrap();
        assert_eq!(events.len(), data.len());
        for (orig, parsed) in data.iter().zip(&events) {
            for (a, b) in orig.points().iter().zip(parsed.points()) {
                assert_eq!(a.mean.x.to_bits(), b.mean.x.to_bits());
                assert_eq!(a.mean.y.to_bits(), b.mean.y.to_bits());
                assert_eq!(a.sigma.to_bits(), b.sigma.to_bits());
            }
        }
    }

    #[test]
    fn round_trips_awkward_floats() {
        let pts = vec![
            SnapshotPoint::new(Point2::new(1.0 / 3.0, 2.0f64.sqrt()), 0.1 + 0.2).unwrap(),
            SnapshotPoint::new(Point2::new(f64::MIN_POSITIVE, 1e300), 0.0).unwrap(),
        ];
        let data: Dataset = vec![Trajectory::new(pts).unwrap()].into_iter().collect();
        let text = write_event_log(&data);
        let events = parse_event_log(&text).unwrap();
        for (a, b) in data.trajectories()[0]
            .points()
            .iter()
            .zip(events[0].points())
        {
            assert_eq!(a.mean.x.to_bits(), b.mean.x.to_bits());
            assert_eq!(a.mean.y.to_bits(), b.mean.y.to_bits());
            assert_eq!(a.sigma.to_bits(), b.sigma.to_bits());
        }
    }

    #[test]
    fn skips_blanks_and_comments() {
        let text = format!("# preamble\n\n{EVENTS_VERSION_LINE}\n# note\nt 0.1 0.2 0.0\n\n");
        let events = parse_event_log(&text).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].len(), 1);
    }

    #[test]
    fn tailer_replays_a_complete_log() {
        let data = sample();
        let dir = std::env::temp_dir().join(format!("trajdata-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replay.events");
        std::fs::write(&path, write_event_log(&data)).unwrap();

        let stop = AtomicBool::new(false);
        let mut tailer = EventTailer::open(&path, false, Duration::from_millis(1)).unwrap();
        let mut events = Vec::new();
        while let Some(t) = tailer.next_event(&stop).unwrap() {
            events.push(t);
        }
        assert_eq!(events.len(), data.len());
        for (orig, parsed) in data.iter().zip(&events) {
            for (a, b) in orig.points().iter().zip(parsed.points()) {
                assert_eq!(a.mean.x.to_bits(), b.mean.x.to_bits());
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tailer_follows_appends_and_honours_eof() {
        use std::io::Write;
        let data = sample();
        let dir = std::env::temp_dir().join(format!("trajdata-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("follow.events");
        std::fs::write(&path, format!("{EVENTS_VERSION_LINE}\n")).unwrap();

        let writer_path = path.clone();
        let writer_data = data.clone();
        let writer = std::thread::spawn(move || {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&writer_path)
                .unwrap();
            for traj in writer_data.iter() {
                let mut line = String::new();
                append_event(&mut line, traj);
                // Torn append: write half the line, pause, then the rest —
                // the tailer must wait for the newline.
                let half = line.len() / 2;
                f.write_all(&line.as_bytes()[..half]).unwrap();
                f.flush().unwrap();
                std::thread::sleep(Duration::from_millis(3));
                f.write_all(&line.as_bytes()[half..]).unwrap();
                f.flush().unwrap();
            }
            f.write_all(b"# eof\n").unwrap();
        });

        let stop = AtomicBool::new(false);
        let mut tailer = EventTailer::open(&path, true, Duration::from_millis(1)).unwrap();
        let mut events = Vec::new();
        while let Some(t) = tailer.next_event(&stop).unwrap() {
            events.push(t);
        }
        writer.join().unwrap();
        assert_eq!(events.len(), data.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tailer_stop_flag_ends_a_blocked_follow() {
        let dir = std::env::temp_dir().join(format!("trajdata-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stop.events");
        std::fs::write(&path, format!("{EVENTS_VERSION_LINE}\nt 0.1 0.2 0.0\n")).unwrap();

        let stop = AtomicBool::new(false);
        let mut tailer = EventTailer::open(&path, true, Duration::from_millis(1)).unwrap();
        assert!(tailer.next_event(&stop).unwrap().is_some());
        // No more bytes and no `# eof`: without the stop flag this would
        // poll forever. Raise it and the tail ends cleanly.
        stop.store(true, Ordering::SeqCst);
        assert!(tailer.next_event(&stop).unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_bad_input_with_line_numbers() {
        assert!(matches!(
            parse_event_log("nonsense\n"),
            Err(EventLogError::Version { .. })
        ));
        assert!(matches!(
            parse_event_log(""),
            Err(EventLogError::Version { .. })
        ));
        let text = format!("{EVENTS_VERSION_LINE}\nt 0.1 0.2\n");
        assert!(matches!(
            parse_event_log(&text),
            Err(EventLogError::Line { line: 2, .. })
        ));
        let text = format!("{EVENTS_VERSION_LINE}\nt 0.1 oops 0.0\n");
        let err = parse_event_log(&text).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let text = format!("{EVENTS_VERSION_LINE}\nx 0.1 0.2 0.0\n");
        assert!(matches!(
            parse_event_log(&text),
            Err(EventLogError::Line { line: 2, .. })
        ));
        let text = format!("{EVENTS_VERSION_LINE}\nt nan 0.2 0.0\n");
        assert!(matches!(
            parse_event_log(&text),
            Err(EventLogError::Trajectory { line: 2, .. })
        ));
    }
}
