//! Property tests for the dataset sanitizer (ISSUE 2 satellite):
//!
//! 1. `sanitize` is **idempotent** — a second pass finds nothing to fix
//!    and changes nothing.
//! 2. `sanitize` never changes an already-valid dataset.
//! 3. A sanitized dataset round-trips through the CSV codec and re-ingests
//!    cleanly under `IngestPolicy::Strict` — repair output is always
//!    strict-grade data.

use proptest::prelude::*;
use trajdata::csv::{from_csv, to_csv};
use trajdata::{ingest, sanitize, Dataset, IngestPolicy, SnapshotPoint, Trajectory};
use trajgeo::Point2;

/// Datasets built through the validating constructors: every coordinate
/// finite, every sigma finite and non-negative.
fn arb_valid_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.3), 1..8),
        1..12,
    )
    .prop_map(|trajs| {
        trajs
            .into_iter()
            .map(|pts| {
                Trajectory::new(
                    pts.into_iter()
                        .map(|(x, y, s)| SnapshotPoint::new(Point2::new(x, y), s).unwrap())
                        .collect(),
                )
                .unwrap()
            })
            .collect()
    })
}

/// Datasets staged through the raw door, with deterministic poisoning:
/// codes 0–5 inject NaN/∞ coordinates or invalid sigmas, the rest stay
/// valid. Mirrors what `IngestPolicy::Repair` stages before sanitizing.
fn arb_dirty_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.3, 0u8..12), 1..8),
        1..12,
    )
    .prop_map(|trajs| {
        trajs
            .into_iter()
            .map(|pts| {
                Trajectory::from_raw_points(
                    pts.into_iter()
                        .map(|(x, y, s, poison)| {
                            let (mean, sigma) = match poison {
                                0 => (Point2::new(f64::NAN, y), s),
                                1 => (Point2::new(x, f64::NAN), s),
                                2 => (Point2::new(f64::INFINITY, y), s),
                                3 => (Point2::new(x, f64::NEG_INFINITY), s),
                                4 => (Point2::new(x, y), -1.0),
                                5 => (Point2::new(x, y), f64::NAN),
                                _ => (Point2::new(x, y), s),
                            };
                            SnapshotPoint { mean, sigma }
                        })
                        .collect(),
                )
            })
            .collect()
    })
}

/// Every point a validating constructor would accept?
fn is_strictly_valid(data: &Dataset) -> bool {
    data.iter().all(|t| {
        t.points()
            .iter()
            .all(|p| p.mean.is_finite() && p.sigma.is_finite() && p.sigma >= 0.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sanitize_is_idempotent(data in arb_dirty_dataset()) {
        let mut data = data;
        sanitize(&mut data);
        prop_assert!(is_strictly_valid(&data));
        let once = data.clone();
        let second = sanitize(&mut data);
        prop_assert!(second.is_clean(), "second pass found defects: {second}");
        prop_assert_eq!(data, once);
    }

    #[test]
    fn sanitize_never_touches_valid_data(data in arb_valid_dataset()) {
        let mut data = data;
        let before = data.clone();
        let report = sanitize(&mut data);
        prop_assert!(report.is_clean(), "spurious fixes: {report}");
        prop_assert_eq!(data, before);
    }

    #[test]
    fn sanitized_csv_reingests_under_strict(data in arb_dirty_dataset()) {
        let mut data = data;
        sanitize(&mut data);
        // Empty trajectories have no CSV representation; drop them the way
        // an exporter would before comparing round-trips.
        let kept: Dataset = data.iter().filter(|t| !t.is_empty()).cloned().collect();
        let text = to_csv(&kept);
        let strict = from_csv(&text).expect("sanitized data must be strict-grade");
        prop_assert_eq!(&strict, &kept);
        let (via_ingest, report) = ingest(&text, IngestPolicy::Strict).unwrap();
        prop_assert!(report.is_clean());
        prop_assert_eq!(via_ingest, kept);
    }
}
