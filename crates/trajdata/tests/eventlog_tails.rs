//! Torn-tail robustness for the append-only event log: logs truncated
//! mid-write (a crashed producer, a copy cut short) and logs with
//! garbage appended must fail with a precise line diagnosis — and a
//! tailing consumer must be able to keep every event before the tear.

use trajdata::eventlog::{
    parse_event_line, parse_event_log, recover_event_log, write_event_log, EventLogError,
    EVENTS_VERSION_LINE,
};
use trajdata::{Dataset, Trajectory};
use trajgeo::Point2;
use trajio::tail::TailVerdict;

fn sample_log(events: usize) -> String {
    let data: Dataset = (0..events)
        .map(|i| {
            Trajectory::from_exact(
                (0..3).map(move |j| Point2::new(0.1 + i as f64 * 0.07, 0.2 + j as f64 * 0.11)),
            )
        })
        .collect();
    write_event_log(&data)
}

#[test]
fn truncated_final_event_errors_with_its_line_number() {
    let mut text = sample_log(3);
    // A fourth event cut off mid-triple: two values instead of three.
    text.push_str("t 0.5 0.5");
    match parse_event_log(&text) {
        Err(EventLogError::Line { line, message }) => {
            assert_eq!(line, 5, "version + 3 events, tear on line 5");
            assert!(message.contains("triples"), "got: {message}");
        }
        other => panic!("expected a Line error for the torn tail, got {other:?}"),
    }
}

#[test]
fn truncation_on_a_triple_boundary_is_invisible() {
    // A tear can land exactly between triples; the shortened event still
    // parses (there is no length framing to catch it). Documented
    // behaviour: consumers that need tear detection must append a
    // trailing `# eof` marker, as `trajmine stream --follow` does.
    let mut text = sample_log(2);
    text.push_str("t 0.4 0.4 0 0.5 0.5 0\n"); // producer meant 3 triples…
    let full = parse_event_log(&text).unwrap();
    assert_eq!(full.len(), 3);
    assert_eq!(full[2].len(), 2, "shortened event parses as 2 snapshots");
}

#[test]
fn truncated_float_still_parses_as_a_number() {
    // `0.` is a valid float literal to Rust's parser, so a tear inside a
    // fraction can only be caught by the triple count — keep a test
    // pinning that the count check does fire when the tear unbalances
    // the triples.
    let mut text = sample_log(1);
    text.push_str("t 0.4 0.5 0. 0.6\n");
    assert!(matches!(
        parse_event_log(&text),
        Err(EventLogError::Line { line: 3, .. })
    ));
}

#[test]
fn binary_garbage_tail_is_rejected_not_panicked() {
    let mut text = sample_log(2);
    text.push_str("\u{0}\u{1}\u{2} binary junk \u{7f}\n");
    match parse_event_log(&text) {
        Err(EventLogError::Line { line, message }) => {
            assert_eq!(line, 4);
            assert!(message.contains("unknown event kind"), "got: {message}");
        }
        other => panic!("expected a Line error for binary junk, got {other:?}"),
    }
}

#[test]
fn version_line_torn_mid_write_is_a_version_error() {
    // The log was cut inside the very first line.
    let torn = &EVENTS_VERSION_LINE[..EVENTS_VERSION_LINE.len() - 4];
    match parse_event_log(torn) {
        Err(EventLogError::Version { found }) => assert_eq!(found, torn),
        other => panic!("expected a Version error, got {other:?}"),
    }
}

#[test]
fn tailing_consumer_keeps_the_prefix_before_the_tear() {
    // The `trajmine stream` pattern: feed lines one at a time through
    // `parse_event_line` and stop at the first error — everything before
    // the tear is preserved.
    let mut text = sample_log(3);
    text.push_str("t 0.9 0.9 0.0 0.8"); // torn mid-write, no newline
    let mut kept = Vec::new();
    let mut tear: Option<EventLogError> = None;
    for (idx, raw) in text.lines().enumerate().skip(1) {
        match parse_event_line(raw, idx + 1) {
            Ok(Some(traj)) => kept.push(traj),
            Ok(None) => {}
            Err(e) => {
                tear = Some(e);
                break;
            }
        }
    }
    assert_eq!(kept.len(), 3, "all complete events survive");
    assert!(
        matches!(tear, Some(EventLogError::Line { line: 5, .. })),
        "the tear is diagnosed at its line: {tear:?}"
    );
}

#[test]
fn whitespace_and_comment_tails_are_harmless() {
    let mut text = sample_log(2);
    text.push_str("   \n\t\n# eof\n\n");
    let events = parse_event_log(&text).unwrap();
    assert_eq!(events.len(), 2);
    // CRLF line endings on every line also parse cleanly.
    let crlf = text.replace('\n', "\r\n");
    let events = parse_event_log(&crlf).unwrap();
    assert_eq!(events.len(), 2);
}

#[test]
fn version_only_log_is_an_empty_stream() {
    let events = parse_event_log(&format!("{EVENTS_VERSION_LINE}\n")).unwrap();
    assert!(events.is_empty());
}

#[test]
fn recover_keeps_the_prefix_and_diagnoses_a_torn_tail() {
    let mut text = sample_log(3);
    text.push_str("t 0.9 0.9 0.0 0.8"); // torn mid-write, no newline
    let rec = recover_event_log(&text).unwrap();
    assert_eq!(rec.events.len(), 3, "all complete events survive");
    assert_eq!(rec.scan.verdict, TailVerdict::TornTruncated(17));
    // The committed prefix re-parses cleanly and yields the same events.
    let reparsed = parse_event_log(&text[..rec.scan.committed_len]).unwrap();
    assert_eq!(reparsed.len(), 3);
}

#[test]
fn recover_diagnoses_binary_garbage_as_garbage() {
    let mut text = sample_log(2);
    text.push_str("\u{0}\u{1}\u{2} binary junk \u{7f}\n");
    let rec = recover_event_log(&text).unwrap();
    assert_eq!(rec.events.len(), 2);
    assert!(matches!(rec.scan.verdict, TailVerdict::Garbage(_)));
}

#[test]
fn recover_reports_clean_for_untorn_logs() {
    let text = sample_log(4);
    let rec = recover_event_log(&text).unwrap();
    assert_eq!(rec.events.len(), 4);
    assert_eq!(rec.scan.verdict, TailVerdict::Clean);
    assert_eq!(rec.scan.committed_len, text.len());
}

#[test]
fn recover_still_rejects_a_torn_version_line() {
    let torn = &EVENTS_VERSION_LINE[..EVENTS_VERSION_LINE.len() - 4];
    assert!(matches!(
        recover_event_log(torn),
        Err(EventLogError::Version { .. })
    ));
}

#[test]
fn recover_matches_parse_on_every_truncation_offset() {
    // The crash-matrix property in miniature: for every byte-level cut of
    // the log, recovery keeps exactly the events whose full line
    // (including newline) fits in the prefix — the committed prefix.
    let text = sample_log(3);
    let header_len = EVENTS_VERSION_LINE.len() + 1;
    let line_ends: Vec<usize> = text
        .char_indices()
        .filter(|&(_, c)| c == '\n')
        .map(|(i, _)| i + 1)
        .collect();
    for cut in header_len..=text.len() {
        let rec = recover_event_log(&text[..cut]).unwrap();
        let committed_events = line_ends
            .iter()
            .filter(|&&e| e > header_len && e <= cut)
            .count();
        assert_eq!(rec.events.len(), committed_events, "cut at byte {cut}");
        if line_ends.contains(&cut) || cut == header_len {
            assert_eq!(rec.scan.verdict, TailVerdict::Clean, "cut at byte {cut}");
        } else {
            assert!(
                matches!(rec.scan.verdict, TailVerdict::TornTruncated(_)),
                "cut at byte {cut}: {:?}",
                rec.scan.verdict
            );
        }
    }
}
