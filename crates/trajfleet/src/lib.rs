//! trajfleet — sharded live serving over per-shard stream miners.
//!
//! One [`trajserve::Server`] fronts a fixed set of *shards* (fleets,
//! regions, tenants — the key is opaque). Each shard owns its own
//! [`trajstream::StreamMiner`] fed from its own
//! [`trajfeed::SourceSpec`] — an append-only `.events` log tailed with
//! `--follow` semantics, a `trajdb` store polled for newly committed
//! records, a dead-reckoning log reconstructed server-side (§3.1/§3.2),
//! or either line protocol arriving over a live TCP socket
//! (`name=tcp://host:port`, `name=dr+tcp://host:port`). Whenever a
//! shard's certified top-k actually changes (tracked by
//! [`StreamMiner::topk_version`]), its ingester builds a fresh
//! pre-serialized [`trajserve::Loaded`] bundle and atomically swaps it
//! into the server's [`trajserve::FleetState`] — the same
//! `Arc`-swap the `--watch` hot reload uses, so `GET /v1/topk?shard=`
//! stays a pre-rendered-string read no matter how fast events arrive.
//!
//! The guarantees compose from the pieces underneath:
//!
//! * **per-shard exactness** — a shard's served top-k is bit-identical
//!   to [`trajpattern::Miner::mine`] over that shard's current window
//!   (the stream miner's core invariant);
//! * **deterministic fan-out** — `GET /v1/topk` with no `shard=` (or
//!   `shard=*`) k-way-merges the per-shard lists under the exact
//!   `certified_topk` comparator, ties broken by the fixed fold order
//!   (sorted shard names), so the merged document is bit-stable;
//! * **restartability** — each shard checkpoints its miner as
//!   `trajpattern-checkpoint v2`; relaunching resumes every shard and
//!   skips already-processed events, continuing bit-identically.
//!
//! [`Fleet::launch`] binds the server and spawns one ingester thread
//! per shard; [`Fleet::run`] serves until shutdown, then stops the
//! ingesters and flushes their final checkpoints.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use trajdata::IngestPolicy;
use trajdb::Store;
use trajfeed::{DrConfig, FeedError, FeedOptions, PumpError};
use trajgeo::Grid;
use trajpattern::MiningParams;
use trajserve::server::ServeState;
use trajserve::{Loaded, ServeError, Server, ServerConfig, ServerHandle, Snapshot};
use trajstream::StreamMiner;

/// Where one shard's records come from: any [`trajfeed::SourceSpec`]
/// (event log, dead-reckoning log, trajdb store, or either line
/// protocol over TCP). Re-exported so shard wiring needs no direct
/// trajfeed dependency.
pub use trajfeed::SourceSpec as ShardSource;

/// One shard of the fleet: a name, a feed source, and an optional
/// checkpoint file for restart/resume.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The shard's routing key (`?shard=NAME`); 1–64 chars of
    /// `[A-Za-z0-9_-]`, unique within the fleet.
    pub name: String,
    /// Where the shard's records come from.
    pub source: ShardSource,
    /// `trajpattern-checkpoint v2` file: resumed at launch when it
    /// exists, rewritten on every published swap and at shutdown.
    pub checkpoint: Option<PathBuf>,
}

/// Mining/ingest settings shared by every shard.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The grid every shard mines over (fixed before data arrives,
    /// like `trajmine stream`).
    pub grid: Grid,
    /// Mining parameters (k, δ, lengths, γ, threads).
    pub params: MiningParams,
    /// Sliding-window capacity per shard, in arrivals.
    pub window: u64,
    /// How long an idle ingester sleeps before re-polling its source.
    pub poll: Duration,
    /// §3.1 uncertainty growth per unit of elapsed time, baked into
    /// every shard's published window query set (`/v1/prange`,
    /// `/v1/pnn` interpolate with it). 0 = reported σ only.
    pub growth_rate: f64,
    /// Defect policy for every shard feed's sanitize stage (strict
    /// feeds stop the shard on the first malformed record).
    pub policy: IngestPolicy,
    /// §3.1/§3.2 reconstruction parameters for dead-reckoning shard
    /// sources (`*.drlog`, `dr+tcp://`); ignored by event/db sources.
    pub dr: DrConfig,
}

/// Why the fleet could not be launched or did not drain cleanly.
#[derive(Debug)]
pub enum FleetError {
    /// The underlying query server refused to start.
    Serve(ServeError),
    /// Mining parameters failed validation.
    Params(trajpattern::ParamsError),
    /// A shard checkpoint could not be written or resumed.
    Checkpoint(trajstream::CheckpointError),
    /// A shard's feed could not be opened, read, or decoded.
    Feed(String, FeedError),
    /// A shard's `trajdb` store could not be opened or read.
    Store(String, trajdb::StoreError),
    /// The shard set itself is unusable (empty, bad names, bad specs).
    Spec(String),
    /// An ingester thread panicked (its shard stops updating; the
    /// server keeps serving the last swapped snapshot).
    IngesterPanicked(String),
    /// Binding, serving, or thread spawning failed at the OS level.
    Io(std::io::Error),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Serve(e) => write!(f, "{e}"),
            FleetError::Params(e) => write!(f, "invalid mining parameters: {e}"),
            FleetError::Checkpoint(e) => write!(f, "shard checkpoint: {e}"),
            FleetError::Feed(shard, e) => write!(f, "shard '{shard}': {e}"),
            FleetError::Store(shard, e) => write!(f, "shard '{shard}': {e}"),
            FleetError::Spec(msg) => write!(f, "bad shard set: {msg}"),
            FleetError::IngesterPanicked(shard) => {
                write!(f, "shard '{shard}': ingester thread panicked")
            }
            FleetError::Io(e) => write!(f, "fleet i/o: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Serve(e) => Some(e),
            FleetError::Params(e) => Some(e),
            FleetError::Checkpoint(e) => Some(e),
            FleetError::Feed(_, e) => Some(e),
            FleetError::Store(_, e) => Some(e),
            FleetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for FleetError {
    fn from(e: ServeError) -> FleetError {
        FleetError::Serve(e)
    }
}

impl From<trajstream::CheckpointError> for FleetError {
    fn from(e: trajstream::CheckpointError) -> FleetError {
        FleetError::Checkpoint(e)
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> FleetError {
        FleetError::Io(e)
    }
}

/// Parses a comma-packed `--shards` value: `name=source` pairs where
/// each source is any [`trajfeed::SourceSpec`] string — e.g.
/// `east=east.events,west=tcp://10.0.0.2:9009,bus=city.drlog`.
/// Checkpoints land in `checkpoint_dir` as `<name>.ckpt` when a
/// directory is given.
pub fn parse_shard_specs(
    raw: &str,
    checkpoint_dir: Option<&Path>,
) -> Result<Vec<ShardSpec>, FleetError> {
    let mut specs = Vec::new();
    for part in raw.split(',').filter(|p| !p.trim().is_empty()) {
        let (name, path) = part.split_once('=').ok_or_else(|| {
            FleetError::Spec(format!(
                "shard spec '{part}' is not name=path (expected e.g. east=east.events)"
            ))
        })?;
        let name = name.trim();
        if name.is_empty() {
            return Err(FleetError::Spec(format!(
                "shard spec '{part}' has an empty name"
            )));
        }
        specs.push(ShardSpec {
            name: name.to_string(),
            source: ShardSource::parse(path.trim()),
            checkpoint: checkpoint_dir.map(|d| d.join(format!("{name}.ckpt"))),
        });
    }
    if specs.is_empty() {
        return Err(FleetError::Spec("--shards lists no shards".into()));
    }
    Ok(specs)
}

/// Discovers a store-backed fleet: every `<root>/shards/<name>/`
/// directory becomes one shard whose source is that shard's own store
/// and whose checkpoint is the store-adjacent `stream.ckpt` (the
/// layout [`trajdb::Store::shard_dir`] defines). Shard names come back
/// sorted — the fleet's fixed fold order.
pub fn discover_db_shards(root: &Path) -> Result<Vec<ShardSpec>, FleetError> {
    let names = Store::list_shards(root).map_err(|e| FleetError::Store("?".into(), e))?;
    if names.is_empty() {
        return Err(FleetError::Spec(format!(
            "{} holds no shards (expected <root>/shards/<name>/ store directories)",
            root.display()
        )));
    }
    names
        .into_iter()
        .map(|name| {
            let dir =
                Store::shard_dir(root, &name).map_err(|e| FleetError::Store(name.clone(), e))?;
            let ckpt = Store::shard_checkpoint_path(root, &name)
                .map_err(|e| FleetError::Store(name.clone(), e))?;
            Ok(ShardSpec {
                name,
                source: ShardSource::Db(dir),
                checkpoint: Some(ckpt),
            })
        })
        .collect()
}

/// A launched live fleet: the bound query server plus one ingester
/// thread per shard.
pub struct Fleet {
    server: Server,
    state: Arc<ServeState>,
    stop: Arc<AtomicBool>,
    ingesters: Vec<(String, thread::JoinHandle<Result<(), FleetError>>)>,
}

impl Fleet {
    /// Resumes (or freshly creates) every shard's miner, binds the
    /// server with each shard's initial snapshot, and spawns the
    /// ingester threads. Nothing is served until [`Fleet::run`].
    pub fn launch(
        specs: Vec<ShardSpec>,
        cfg: FleetConfig,
        server_cfg: ServerConfig,
    ) -> Result<Fleet, FleetError> {
        if cfg.window == 0 {
            return Err(FleetError::Spec("window must be at least 1".into()));
        }
        let mut prepared = Vec::with_capacity(specs.len());
        for spec in specs {
            let miner = match &spec.checkpoint {
                Some(path) if path.exists() => StreamMiner::resume(path)?,
                _ => StreamMiner::new(cfg.grid.clone(), cfg.params.clone())
                    .map_err(FleetError::Params)?,
            };
            let snapshot = Snapshot::from_stream(&miner);
            prepared.push((spec, miner, snapshot));
        }

        let initial: Vec<(String, Snapshot)> = prepared
            .iter()
            .map(|(spec, _, snap)| (spec.name.clone(), snap.clone()))
            .collect();
        let confirm_threshold = server_cfg.confirm_threshold;
        let server = Server::bind_fleet(initial, server_cfg)?;
        let state = server.state();
        // A resumed miner already holds a window — publish it so
        // `/v1/prange` & co. see the shard's objects before the first
        // new event arrives.
        for (spec, miner, _) in &prepared {
            publish_window(spec, miner, cfg.growth_rate, &state);
        }
        let stop = Arc::new(AtomicBool::new(false));

        let mut ingesters = Vec::with_capacity(prepared.len());
        for (spec, miner, _) in prepared {
            let name = spec.name.clone();
            let shared = Arc::clone(&state);
            let stop_flag = Arc::clone(&stop);
            let shard_cfg = cfg.clone();
            let handle = thread::Builder::new()
                .name(format!("trajfleet-{name}"))
                .spawn(move || {
                    ingest_shard(
                        spec,
                        miner,
                        shard_cfg,
                        confirm_threshold,
                        &shared,
                        &stop_flag,
                    )
                })?;
            ingesters.push((name, handle));
        }

        Ok(Fleet {
            server,
            state,
            stop,
            ingesters,
        })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.server.local_addr()
    }

    /// A shutdown handle for the query server (stopping the server is
    /// what makes [`Fleet::run`] return and drain the ingesters).
    pub fn handle(&self) -> ServerHandle {
        self.server.handle()
    }

    /// Shard names in the fixed fold order.
    pub fn shard_names(&self) -> Vec<String> {
        self.state
            .fleet()
            .map(|f| f.names().map(str::to_string).collect())
            .unwrap_or_default()
    }

    /// Serves until shutdown is requested, then stops every ingester,
    /// joins them (each flushes its final checkpoint on the way out),
    /// and reports the first shard failure, if any.
    pub fn run(self) -> Result<(), FleetError> {
        let Fleet {
            server,
            state: _,
            stop,
            ingesters,
        } = self;
        let served = server.run();
        stop.store(true, Ordering::SeqCst);
        let mut first_err = None;
        for (name, handle) in ingesters {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                Err(_) => {
                    first_err.get_or_insert(FleetError::IngesterPanicked(name));
                }
            }
        }
        served?;
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// One shard's ingest loop: open the shard's feed on the spine, pump
/// records through the miner, and publish a freshly built serving
/// bundle whenever the certified top-k actually moved. Every source
/// kind — event log, dead-reckoning log, trajdb cursor, TCP socket —
/// runs this same loop.
fn ingest_shard(
    spec: ShardSpec,
    mut miner: StreamMiner,
    cfg: FleetConfig,
    confirm_threshold: f64,
    state: &ServeState,
    stop: &AtomicBool,
) -> Result<(), FleetError> {
    // Resume: the first `skip` records of the source were already
    // absorbed by the checkpointed miner — replay past them without
    // re-applying (exactly `trajmine stream --resume` semantics).
    let skip = miner.next_seq();
    let mut last_version = miner.topk_version();
    let opts = FeedOptions {
        follow: true,
        poll: cfg.poll,
        policy: cfg.policy,
        dr: cfg.dr,
        ..FeedOptions::default()
    };
    let kind = spec.source.kind();

    let result = match trajfeed::open(&spec.source, &opts) {
        Err(e) => Err(FleetError::Feed(spec.name.clone(), e)),
        Ok(mut feed) => {
            let pumped = trajfeed::pump(
                feed.as_mut(),
                stop,
                skip,
                |traj| {
                    miner.slide(traj, cfg.window);
                    publish_window(&spec, &miner, cfg.growth_rate, state);
                    publish_if_changed(&spec, &miner, &mut last_version, confirm_threshold, state)
                },
                |stats| {
                    if let Some(fleet) = state.fleet() {
                        fleet.swap_feed_stats(&spec.name, kind, stats.clone());
                    }
                },
            );
            // Publish the final counters too — transport events after
            // the last record batch (reconnects, torn recoveries)
            // would otherwise never reach `/metrics`.
            if let Some(fleet) = state.fleet() {
                fleet.swap_feed_stats(&spec.name, kind, feed.stats().clone());
            }
            match pumped {
                Ok(_) => Ok(()),
                Err(PumpError::Feed(e)) => Err(FleetError::Feed(spec.name.clone(), e)),
                Err(PumpError::Sink(e)) => Err(e),
            }
        }
    };

    // Drain: whatever happened above, flush the final checkpoint so a
    // relaunch resumes from everything this ingester absorbed.
    if let Some(path) = &spec.checkpoint {
        miner.checkpoint(path)?;
    }
    result
}

/// Publishes the shard's current window as a probabilistic query set.
/// Unlike the top-k, the window moves on *every* slide, so this runs
/// unconditionally after each event; object ids are the miner's stream
/// sequence numbers.
fn publish_window(spec: &ShardSpec, miner: &StreamMiner, growth_rate: f64, state: &ServeState) {
    if let Some(fleet) = state.fleet() {
        let objects = miner.window().map(|(seq, t)| (seq, t.clone())).collect();
        fleet.swap_window(
            &spec.name,
            Arc::new(trajquery::QuerySet::build(objects, growth_rate)),
        );
    }
}

/// Publishes the miner's state to the shard's serving slot iff the
/// certified top-k moved since the last publish: build the snapshot,
/// pre-serialize the bundle, swap it in atomically, checkpoint.
fn publish_if_changed(
    spec: &ShardSpec,
    miner: &StreamMiner,
    last_version: &mut u64,
    confirm_threshold: f64,
    state: &ServeState,
) -> Result<(), FleetError> {
    if miner.topk_version() == *last_version {
        return Ok(());
    }
    *last_version = miner.topk_version();
    let snapshot = Snapshot::from_stream(miner);
    let loaded = Loaded::build(snapshot, confirm_threshold)?;
    if let Some(fleet) = state.fleet() {
        fleet.swap(&spec.name, Arc::new(loaded));
        state.metrics.reloads.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(path) = &spec.checkpoint {
        miner.checkpoint(path)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_specs_parse_comma_packed_pairs() {
        let specs = parse_shard_specs("east=e.events, west=w.events", None).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "east");
        assert!(matches!(&specs[0].source, ShardSource::Events(p) if p.ends_with("e.events")));
        assert!(specs[0].checkpoint.is_none());

        let with_ckpt = parse_shard_specs("a=a.events", Some(Path::new("/tmp/ckpts"))).unwrap();
        assert_eq!(
            with_ckpt[0].checkpoint.as_deref(),
            Some(Path::new("/tmp/ckpts/a.ckpt"))
        );
    }

    #[test]
    fn shard_specs_accept_every_source_kind() {
        let specs = parse_shard_specs(
            "east=e.events,sock=tcp://10.0.0.2:9009,bus=city.drlog,dr=dr+tcp://h:1",
            None,
        )
        .unwrap();
        assert!(matches!(&specs[0].source, ShardSource::Events(_)));
        assert!(
            matches!(&specs[1].source, ShardSource::EventsTcp(a) if a == "10.0.0.2:9009")
        );
        assert!(matches!(&specs[2].source, ShardSource::Dr(_)));
        assert!(matches!(&specs[3].source, ShardSource::DrTcp(a) if a == "h:1"));
    }

    #[test]
    fn bad_shard_specs_are_rejected() {
        assert!(matches!(
            parse_shard_specs("", None),
            Err(FleetError::Spec(_))
        ));
        assert!(matches!(
            parse_shard_specs("just-a-path.events", None),
            Err(FleetError::Spec(_))
        ));
        assert!(matches!(
            parse_shard_specs("=x.events", None),
            Err(FleetError::Spec(_))
        ));
    }
}
