//! The object-query half of the fleet contract: `POST /v1/prange`,
//! `/v1/pnn`, and `/v1/matchlive` against a live fleet answer
//! bit-identically to [`trajquery::QuerySet`] built offline from the
//! same windows —
//!
//! * **shard-scoped** (`?shard=NAME`): the served `(id, prob)` list is
//!   exactly the shard's own query set's answer (ids are the miner's
//!   stream sequence numbers);
//! * **fan-out** (bare POST): the deterministic k-way merge over the
//!   per-shard answers ranks exactly like one query set holding every
//!   shard's objects — the probability sequence matches bit for bit.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

use trajdata::{eventlog, Dataset, Trajectory};
use trajgeo::{BBox, Grid, Point2};
use trajpattern::MiningParams;
use trajquery::QuerySet;
use trajstream::StreamMiner;

const GROWTH_RATE: f64 = 0.25;

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n");
    if let Some(body) = body {
        req.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
    } else {
        req.push_str("\r\n");
    }
    s.write_all(req.as_bytes()).unwrap();
    let mut raw = Vec::new();
    std::io::Read::read_to_end(&mut s, &mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn wait_absorbed(addr: SocketAddr, expected: &[(&str, u64)]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = request(addr, "GET", "/v1/shards", None);
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        let all =
            expected.iter().all(|(name, want)| {
                doc["shards"].as_array().unwrap().iter().any(|s| {
                    s["name"].as_str() == Some(name) && s["next_seq"].as_u64() == Some(*want)
                })
            });
        if all {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "shards never absorbed their events; last /v1/shards: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn append_log(path: &Path, trajs: &[Trajectory]) {
    let mut text = String::new();
    text.push_str(eventlog::EVENTS_VERSION_LINE);
    text.push('\n');
    for t in trajs {
        eventlog::append_event(&mut text, t);
    }
    text.push_str("# eof\n");
    std::fs::write(path, text).unwrap();
}

/// Replays `trajs` through a fresh stream miner exactly like the fleet
/// ingester, returning the final window as `(stream seq, trajectory)`
/// objects — the id space the live `/v1/prange` answers use.
fn window_objects(
    trajs: &[Trajectory],
    grid: &Grid,
    params: &MiningParams,
    window: u64,
) -> Vec<(u64, Trajectory)> {
    let mut miner = StreamMiner::new(grid.clone(), params.clone()).unwrap();
    for t in trajs {
        miner.slide(t.clone(), window);
    }
    miner.window().map(|(seq, t)| (seq, t.clone())).collect()
}

fn served_matches(body: &str) -> Vec<(u64, f64)> {
    let doc: serde_json::Value = serde_json::from_str(body).unwrap();
    doc["matches"]
        .as_array()
        .unwrap()
        .iter()
        .map(|m| (m["id"].as_u64().unwrap(), m["prob"].as_f64().unwrap()))
        .collect()
}

fn prob_bits(matches: &[(u64, f64)]) -> Vec<u64> {
    matches.iter().map(|(_, p)| p.to_bits()).collect()
}

#[test]
fn live_object_queries_match_offline_query_sets() {
    let dir = std::env::temp_dir().join(format!("trajfleet-query-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let grid = Grid::new(BBox::unit(), 5, 5).unwrap();
    let params = MiningParams::new(4, 0.06).unwrap().with_max_len(3).unwrap();
    let window = 6u64;

    let cfg = datagen::ZebraConfig {
        num_groups: 2,
        zebras_per_group: 8,
        snapshots: 8,
        ..datagen::ZebraConfig::default()
    };
    let data: Dataset = datagen::observe_directly(&cfg.paths(17), 0.02, 17);
    let trajs = data.trajectories();
    let east: Vec<Trajectory> = trajs.iter().step_by(2).cloned().collect();
    let west: Vec<Trajectory> = trajs.iter().skip(1).step_by(2).cloned().collect();

    let east_log = dir.join("east.events");
    let west_log = dir.join("west.events");
    append_log(&east_log, &east);
    append_log(&west_log, &west);

    let fleet = trajfleet::Fleet::launch(
        trajfleet::parse_shard_specs(
            &format!("east={},west={}", east_log.display(), west_log.display()),
            None,
        )
        .unwrap(),
        trajfleet::FleetConfig {
            grid: grid.clone(),
            params: params.clone(),
            window,
            poll: Duration::from_millis(5),
            growth_rate: GROWTH_RATE,
            policy: trajdata::IngestPolicy::Strict,
            dr: trajfeed::DrConfig::default(),
        },
        trajserve::ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..trajserve::ServerConfig::default()
        },
    )
    .unwrap();
    let addr = fleet.local_addr().unwrap();
    let handle = fleet.handle();
    let join = std::thread::spawn(move || fleet.run());
    wait_absorbed(
        addr,
        &[("east", east.len() as u64), ("west", west.len() as u64)],
    );

    // Offline ground truth: the same slides, the same windows.
    let east_objs = window_objects(&east, &grid, &params, window);
    let west_objs = window_objects(&west, &grid, &params, window);
    let east_set = QuerySet::build(east_objs.clone(), GROWTH_RATE);
    let union_set = QuerySet::build(
        east_objs.iter().chain(&west_objs).cloned().collect(),
        GROWTH_RATE,
    );

    // `/v1/shards` reports each shard's window time bounds.
    let (_, shards_body) = request(addr, "GET", "/v1/shards", None);
    let doc: serde_json::Value = serde_json::from_str(&shards_body).unwrap();
    for shard in doc["shards"].as_array().unwrap() {
        assert_eq!(shard["window"]["objects"].as_u64(), Some(window));
        assert_eq!(shard["window"]["t_min"].as_f64(), Some(0.0));
        assert!(shard["window"]["t_max"].as_f64().unwrap() > 0.0);
    }

    let (p, delta, t, tau) = (Point2::new(0.5, 0.5), 0.15, 2.5, 0.05);
    let range_body = format!(
        r#"{{"p": [{}, {}], "delta": {delta}, "t": {t}, "tau": {tau}}}"#,
        p.x, p.y
    );

    // Shard-scoped prange: ids (stream seqs) and probability bits match
    // the shard's own query set exactly.
    let (status, body) = request(addr, "POST", "/v1/prange?shard=east", Some(&range_body));
    assert_eq!(status, 200, "{body}");
    let served = served_matches(&body);
    let expect = east_set.prange(p, delta, t, tau).unwrap();
    assert!(!expect.is_empty(), "query must hit for the test to bite");
    assert_eq!(served.len(), expect.len());
    for (got, want) in served.iter().zip(&expect) {
        assert_eq!(got.0, want.id);
        assert_eq!(got.1.to_bits(), want.prob.to_bits());
    }

    // Bare prange fans out: the merged probability sequence is exactly
    // the union set's answer (rank order is probability descending in
    // both, so the sequences agree bit for bit).
    let (status, body) = request(addr, "POST", "/v1/prange", Some(&range_body));
    assert_eq!(status, 200, "{body}");
    let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(doc["schema"].as_str(), Some("trajserve-query/v1"));
    assert_eq!(
        doc["shards"].as_array().unwrap().len(),
        2,
        "fan-out lists both shards"
    );
    let served = served_matches(&body);
    let expect = union_set.prange(p, delta, t, tau).unwrap();
    assert_eq!(
        prob_bits(&served),
        expect.iter().map(|m| m.prob.to_bits()).collect::<Vec<_>>()
    );

    // Bare pnn: merging the per-shard top-k lists yields the union's
    // top-k, bit for bit.
    let k = 5usize;
    let pnn_body = format!(
        r#"{{"p": [{}, {}], "delta": {delta}, "t": {t}, "tau": {tau}, "k": {k}}}"#,
        p.x, p.y
    );
    let (status, body) = request(addr, "POST", "/v1/pnn", Some(&pnn_body));
    assert_eq!(status, 200, "{body}");
    let served = served_matches(&body);
    let expect = union_set.pnn(p, t, k, tau, delta).unwrap();
    assert_eq!(served.len(), expect.len().min(k));
    assert_eq!(
        prob_bits(&served),
        expect.iter().map(|m| m.prob.to_bits()).collect::<Vec<_>>()
    );

    // Bare matchlive: merged NM sequence equals the union set's.
    let union_data: Dataset = union_set.objects().iter().map(|(_, t)| t.clone()).collect();
    let mined = trajpattern::Miner::new(&union_data, &grid)
        .params(params.clone())
        .mine()
        .unwrap()
        .patterns;
    assert!(!mined.is_empty(), "workload must certify a pattern");
    let cells: Vec<u32> = mined[0].pattern.cells().iter().map(|c| c.0).collect();
    let match_body = format!(r#"{{"pattern": {cells:?}, "threshold": -10.0}}"#);
    let (status, body) = request(addr, "POST", "/v1/matchlive", Some(&match_body));
    assert_eq!(status, 200, "{body}");
    let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
    let served_nm: Vec<u64> = doc["matches"]
        .as_array()
        .unwrap()
        .iter()
        .map(|m| m["nm"].as_f64().unwrap().to_bits())
        .collect();
    let pattern =
        trajpattern::Pattern::new(cells.iter().map(|&c| trajgeo::CellId(c)).collect()).unwrap();
    let expect = union_set
        .match_pattern(&grid, params.delta, params.min_prob, 1, &pattern, -10.0)
        .unwrap();
    assert!(
        !expect.is_empty(),
        "pattern must match for the test to bite"
    );
    assert_eq!(
        served_nm,
        expect.iter().map(|m| m.nm.to_bits()).collect::<Vec<_>>()
    );

    // Live-mode guardrails: posted trajectories and growth overrides are
    // client errors; unknown shards are 404s.
    let (status, _) = request(
        addr,
        "POST",
        "/v1/prange",
        Some(r#"{"p": [0.5, 0.5], "delta": 0.1, "t": 1.0, "trajectories": []}"#),
    );
    assert_eq!(status, 400);
    let (status, _) = request(
        addr,
        "POST",
        "/v1/prange",
        Some(r#"{"p": [0.5, 0.5], "delta": 0.1, "t": 1.0, "options": {"growth_rate": 0.5}}"#),
    );
    assert_eq!(status, 400);
    let (status, _) = request(addr, "POST", "/v1/pnn?shard=nope", Some(&pnn_body));
    assert_eq!(status, 404);

    handle.shutdown();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
