//! Feed-spine equivalence: the same logical records delivered through
//! every `trajfeed::Feed` implementation — in-memory static, `.events`
//! file replay, TCP socket, trajdb cursor — drive a `StreamMiner` to
//! bit-identical windows and certified top-k. Plus the socket failure
//! modes: a producer dying mid-line (torn frame, discarded and counted)
//! and a restarted producer replaying the remainder over a second
//! connection.

use proptest::prelude::*;
use std::io::Write;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use trajdata::{Dataset, IngestPolicy, Trajectory};
use trajfeed::{FeedOptions, SourceSpec, StaticFeed};
use trajgeo::{BBox, Grid};
use trajpattern::MiningParams;
use trajstream::StreamMiner;

const WINDOW: u64 = 16;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("trajfleet-feedeq-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn workload(seed: u64, traces: usize, snapshots: usize) -> (Dataset, String) {
    let cfg = datagen::UniformConfig {
        num_objects: traces,
        snapshots,
        ..datagen::UniformConfig::default()
    };
    let data = datagen::observe_directly(&cfg.paths(seed), 0.02, seed ^ 0xfeed);
    let text = datagen::event_log(&data);
    (data, text)
}

/// Slides every trajectory through a fresh miner and fingerprints the
/// result: (window dataset JSON, certified top-k JSON). Bit-identical
/// fingerprints mean bit-identical mining state.
fn fingerprint(trajs: &[Trajectory], k: usize, delta: f64) -> (String, String) {
    let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
    let params = MiningParams::new(k, delta).unwrap().with_max_len(3).unwrap();
    let mut miner = StreamMiner::new(grid, params).unwrap();
    for t in trajs {
        miner.slide(t.clone(), WINDOW);
    }
    (
        miner.window_dataset().to_json(),
        serde_json::to_string(&miner.topk()).unwrap(),
    )
}

fn drain_spec(spec: &SourceSpec, opts: &FeedOptions) -> Vec<Trajectory> {
    let mut feed = trajfeed::open(spec, opts).unwrap();
    trajfeed::drain(feed.as_mut(), &AtomicBool::new(false)).unwrap()
}

/// Serves `payloads` on a fresh loopback listener, one payload per
/// accepted connection, then exits. Returns the address to dial.
fn serve_payloads(payloads: Vec<String>) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        for payload in payloads {
            let (mut conn, _) = listener.accept().unwrap();
            conn.write_all(payload.as_bytes()).unwrap();
            // Drop closes the connection; the consumer decides whether
            // that was clean (`# eof` seen) or a transport failure.
        }
    });
    (addr, handle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One workload, four transports, one mining fingerprint.
    #[test]
    fn every_feed_impl_mines_bit_identically(
        seed in 0u64..1000,
        traces in 4usize..10,
        snapshots in 5usize..10,
        k in 2usize..4,
        delta in 0.05f64..0.15,
    ) {
        let (data, text) = workload(seed, traces, snapshots);
        let dir = temp_dir("prop");

        // Static in-memory feed over the parsed event-log text.
        let mut st = StaticFeed::from_events(&text, IngestPolicy::Strict).unwrap();
        let from_static = trajfeed::drain(&mut st, &AtomicBool::new(false)).unwrap();

        // File replay.
        let path = dir.join(format!("w-{seed}-{traces}-{snapshots}.events"));
        std::fs::write(&path, &text).unwrap();
        let from_file = drain_spec(&SourceSpec::Events(path.clone()), &FeedOptions::default());

        // Live socket: the same bytes plus the protocol terminator.
        let (addr, sender) = serve_payloads(vec![format!("{text}# eof\n")]);
        let from_socket = drain_spec(&SourceSpec::EventsTcp(addr), &FeedOptions::default());
        sender.join().unwrap();

        // trajdb cursor over the same records in the same order.
        let db_dir = dir.join(format!("db-{seed}-{traces}-{snapshots}"));
        {
            let mut store =
                trajdb::Store::open(&db_dir, trajdb::StoreOptions::default()).unwrap();
            store.append_batch(0, data.trajectories()).unwrap();
            store.sync().unwrap();
        }
        let from_db = drain_spec(&SourceSpec::Db(db_dir.clone()), &FeedOptions::default());

        let reference = fingerprint(data.trajectories(), k, delta);
        prop_assert_eq!(&fingerprint(&from_static, k, delta), &reference);
        prop_assert_eq!(&fingerprint(&from_file, k, delta), &reference);
        prop_assert_eq!(&fingerprint(&from_socket, k, delta), &reference);
        prop_assert_eq!(&fingerprint(&from_db, k, delta), &reference);

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&db_dir).ok();
    }
}

/// A producer that dies mid-line loses only the torn frame: the feed
/// discards the partial bytes, counts a torn recovery, and the restarted
/// producer's replay of the remainder lands every record exactly once.
#[test]
fn socket_reconnect_with_torn_frame_recovers_every_record() {
    let (data, text) = workload(42, 6, 8);
    let lines: Vec<&str> = text.lines().collect();
    let (version, records) = (lines[0], &lines[1..]);
    let mid = records.len() / 2;

    // Connection 1: version, first half, then half the bytes of the
    // next record — no newline, the classic torn frame.
    let torn = &records[mid][..records[mid].len() / 2];
    let first = format!("{version}\n{}\n{torn}", records[..mid].join("\n"));
    // Connection 2: the restarted producer replays from its own
    // beginning — version line, the not-yet-delivered records (including
    // the one whose frame tore), and a clean terminator.
    let second = format!("{version}\n{}\n# eof\n", records[mid..].join("\n"));

    let (addr, sender) = serve_payloads(vec![first, second]);
    let mut feed =
        trajfeed::open(&SourceSpec::EventsTcp(addr), &FeedOptions::default()).unwrap();
    let got = trajfeed::drain(feed.as_mut(), &AtomicBool::new(false)).unwrap();
    sender.join().unwrap();

    assert_eq!(got.len(), data.len(), "every record exactly once");
    let (ref_window, ref_topk) = fingerprint(data.trajectories(), 3, 0.1);
    let (got_window, got_topk) = fingerprint(&got, 3, 0.1);
    assert_eq!(got_window, ref_window);
    assert_eq!(got_topk, ref_topk);

    let stats = feed.stats();
    assert_eq!(stats.records, data.len() as u64);
    assert_eq!(stats.reconnects, 1, "one transport failure");
    assert_eq!(stats.recovery_torn, 1, "the partial line was diagnosed torn");
    assert_eq!(stats.recovery_clean, 0);
}

/// A producer that closes cleanly between records (no partial bytes in
/// flight) is a clean recovery, and the stream still completes.
#[test]
fn socket_reconnect_on_a_frame_boundary_is_a_clean_recovery() {
    let (data, text) = workload(7, 5, 6);
    let lines: Vec<&str> = text.lines().collect();
    let (version, records) = (lines[0], &lines[1..]);
    let mid = records.len() / 2;

    let first = format!("{version}\n{}\n", records[..mid].join("\n"));
    let second = format!("{version}\n{}\n# eof\n", records[mid..].join("\n"));

    let (addr, sender) = serve_payloads(vec![first, second]);
    let mut feed =
        trajfeed::open(&SourceSpec::EventsTcp(addr), &FeedOptions::default()).unwrap();
    let got = trajfeed::drain(feed.as_mut(), &AtomicBool::new(false)).unwrap();
    sender.join().unwrap();

    assert_eq!(got.len(), data.len());
    let stats = feed.stats();
    assert_eq!(stats.reconnects, 1);
    assert_eq!(stats.recovery_clean, 1);
    assert_eq!(stats.recovery_torn, 0);
}

/// The dead-reckoning transports agree too: the same DR log over a file
/// and over a socket reconstruct bit-identical trajectories.
#[test]
fn dr_log_over_file_and_socket_reconstruct_identically() {
    let log = datagen::dr_log(&datagen::DrFeedConfig::default(), 9);
    let dir = temp_dir("dr");
    let path = dir.join("fleet.drlog");
    std::fs::write(&path, &log).unwrap();

    let from_file = drain_spec(&SourceSpec::Dr(path.clone()), &FeedOptions::default());
    let (addr, sender) = serve_payloads(vec![log]);
    let from_socket = drain_spec(&SourceSpec::DrTcp(addr), &FeedOptions::default());
    sender.join().unwrap();

    assert!(!from_file.is_empty());
    assert_eq!(
        fingerprint(&from_file, 2, 0.1),
        fingerprint(&from_socket, 2, 0.1),
    );
    std::fs::remove_file(&path).ok();
}
