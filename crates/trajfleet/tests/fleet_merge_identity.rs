//! The fleet contract, both halves:
//!
//! * **merge identity** (property): the deterministic k-way fan-out
//!   merge over per-shard certified top-k lists is bit-identical to
//!   batch-mining each shard's window with [`trajpattern::Miner`] and
//!   sorting the union under the same comparator (NM descending,
//!   `Pattern` ascending, exact ties to the earlier shard in the fixed
//!   fold order) — including when a shard checkpointed and resumed
//!   mid-stream;
//! * **live serving** (end-to-end): a [`trajfleet::Fleet`] tailing real
//!   event logs answers `?shard=` and fan-out queries that match batch
//!   mining, survives a SIGTERM-style drain, and resumes from its
//!   per-shard checkpoints bit-identically.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use trajdata::{eventlog, Dataset, SnapshotPoint, Trajectory};
use trajgeo::{BBox, Grid, Point2};
use trajpattern::{MinedPattern, Miner, MiningParams};
use trajserve::{merge_topk, ShardTopk};
use trajstream::StreamMiner;

fn arb_shards() -> impl Strategy<Value = Vec<Vec<Trajectory>>> {
    prop::collection::vec(
        prop::collection::vec(
            prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.02f64..0.2), 2..6),
            2..8,
        ),
        2..4,
    )
    .prop_map(|shards| {
        shards
            .into_iter()
            .map(|trajs| {
                trajs
                    .into_iter()
                    .map(|pts| {
                        Trajectory::new(
                            pts.into_iter()
                                .map(|(x, y, s)| SnapshotPoint::new(Point2::new(x, y), s).unwrap())
                                .collect(),
                        )
                        .unwrap()
                    })
                    .collect()
            })
            .collect()
    })
}

fn batch_mine(data: &Dataset, grid: &Grid, params: &MiningParams) -> Vec<MinedPattern> {
    if data.is_empty() {
        return Vec::new();
    }
    Miner::new(data, grid)
        .params(params.clone())
        .mine()
        .expect("batch mining the window must succeed")
        .patterns
}

/// The reference merge: the union of every shard's batch top-k, stably
/// sorted under the exact `certified_topk` comparator. A stable sort
/// over the fold-order concatenation keeps the earlier shard first on
/// exact `(nm, pattern)` ties — the same rule `merge_topk` implements.
fn reference_merge(
    shard_lists: &[(String, Vec<MinedPattern>)],
    k: usize,
) -> Vec<(&str, &MinedPattern)> {
    let mut union: Vec<(&str, &MinedPattern)> = shard_lists
        .iter()
        .flat_map(|(name, list)| list.iter().map(move |m| (name.as_str(), m)))
        .collect();
    union.sort_by(|(_, a), (_, b)| {
        b.nm.partial_cmp(&a.nm)
            .expect("NM values are finite")
            .then_with(|| a.pattern.cmp(&b.pattern))
    });
    union.truncate(k);
    union
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fan-out merge over live per-shard miners == sort-the-union over
    /// batch-mined shard windows, bit for bit — with one shard passing
    /// through a checkpoint/resume cycle partway through its stream.
    #[test]
    fn fanout_merge_is_bit_identical_to_batch_per_shard_merge(
        shards in arb_shards(),
        k in 1usize..5,
        window in 2u64..5,
        delta in 0.04f64..0.12,
        split in 1usize..4,
    ) {
        let grid = Grid::new(BBox::unit(), 3, 3).unwrap();
        let params = MiningParams::new(k, delta).unwrap().with_max_len(3).unwrap();

        // Stream every shard; shard 0 additionally checkpoints and
        // resumes mid-stream (the fleet's restart path).
        let mut miners: Vec<(String, StreamMiner)> = Vec::new();
        for (s, trajs) in shards.iter().enumerate() {
            let name = format!("shard{s}");
            let mut miner = StreamMiner::new(grid.clone(), params.clone()).unwrap();
            let split_at = if s == 0 { split.min(trajs.len()) } else { usize::MAX };
            for (i, traj) in trajs.iter().enumerate() {
                miner.slide(traj.clone(), window);
                if i + 1 == split_at {
                    let path = std::env::temp_dir().join(format!(
                        "trajfleet-prop-{}-{s}-{k}-{split}",
                        std::process::id()
                    ));
                    miner.checkpoint(&path).unwrap();
                    miner = StreamMiner::resume(&path).unwrap();
                    std::fs::remove_file(&path).ok();
                }
            }
            miners.push((name, miner));
        }
        // Fold order is sorted shard names (here: already sorted).

        // Per-shard identity: each live top-k == batch over its window.
        let shard_lists: Vec<(String, Vec<MinedPattern>)> = miners
            .iter()
            .map(|(name, m)| {
                let batch = batch_mine(&m.window_dataset(), &grid, &params);
                prop_assert_eq!(m.topk().len(), batch.len());
                for (a, b) in m.topk().iter().zip(&batch) {
                    prop_assert_eq!(&a.pattern, &b.pattern);
                    prop_assert_eq!(a.nm.to_bits(), b.nm.to_bits());
                }
                (name.clone(), batch)
            })
            .collect();

        // Merge identity: k-way merge over the *live* lists == stable
        // sort of the union of the *batch* lists.
        let inputs: Vec<ShardTopk<'_>> = miners
            .iter()
            .map(|(name, m)| ShardTopk { shard: name.as_str(), patterns: m.topk() })
            .collect();
        let merged = merge_topk(&inputs, k);
        let expected = reference_merge(&shard_lists, k);
        prop_assert_eq!(merged.len(), expected.len());
        for (got, (shard, want)) in merged.iter().zip(&expected) {
            prop_assert_eq!(got.shard, *shard, "shard attribution diverged");
            prop_assert_eq!(&got.entry.pattern, &want.pattern);
            prop_assert_eq!(got.entry.nm.to_bits(), want.nm.to_bits());
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end live serving over real sockets and real event logs.
// ---------------------------------------------------------------------------

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    s.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = Vec::new();
    std::io::Read::read_to_end(&mut s, &mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Polls `/v1/shards` until every shard's published `next_seq` reaches
/// its expected event count (i.e. all appended events are live).
fn wait_absorbed(addr: SocketAddr, expected: &[(&str, u64)]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = get(addr, "/v1/shards");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        let all =
            expected.iter().all(|(name, want)| {
                doc["shards"].as_array().unwrap().iter().any(|s| {
                    s["name"].as_str() == Some(name) && s["next_seq"].as_u64() == Some(*want)
                })
            });
        if all {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "shards never absorbed their events; last /v1/shards: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn fleet_workload(seed: u64) -> Dataset {
    let cfg = datagen::ZebraConfig {
        num_groups: 2,
        zebras_per_group: 8,
        snapshots: 8,
        ..datagen::ZebraConfig::default()
    };
    datagen::observe_directly(&cfg.paths(seed), 0.02, seed)
}

fn mining_setup() -> (Grid, MiningParams) {
    let grid = Grid::new(BBox::unit(), 5, 5).unwrap();
    let params = MiningParams::new(4, 0.06).unwrap().with_max_len(3).unwrap();
    (grid, params)
}

/// Replays `trajs` through a fresh stream miner (the same slide the
/// fleet ingester performs) and batch-mines the resulting window — the
/// ground truth a shard's served top-k must match bit for bit.
fn expected_topk(
    trajs: &[Trajectory],
    grid: &Grid,
    params: &MiningParams,
    window: u64,
) -> Vec<MinedPattern> {
    let mut miner = StreamMiner::new(grid.clone(), params.clone()).unwrap();
    for t in trajs {
        miner.slide(t.clone(), window);
    }
    batch_mine(&miner.window_dataset(), grid, params)
}

fn assert_served_matches(body: &str, expected: &[MinedPattern]) {
    let doc: serde_json::Value = serde_json::from_str(body).unwrap();
    let served = doc["patterns"].as_array().unwrap();
    assert_eq!(served.len(), expected.len(), "top-k size diverged");
    for (got, want) in served.iter().zip(expected) {
        let cells: Vec<u64> = got["pattern"]["cells"]
            .as_array()
            .unwrap()
            .iter()
            .map(|c| c.as_u64().unwrap())
            .collect();
        let want_cells: Vec<u64> = want.pattern.cells().iter().map(|c| c.0 as u64).collect();
        assert_eq!(cells, want_cells, "pattern cells diverged");
        assert_eq!(
            got["nm"].as_f64().unwrap().to_bits(),
            want.nm.to_bits(),
            "NM bits diverged"
        );
    }
}

fn append_log(path: &Path, header: bool, trajs: &[Trajectory], eof: bool) {
    let mut text = String::new();
    if header {
        text.push_str(eventlog::EVENTS_VERSION_LINE);
        text.push('\n');
    }
    for t in trajs {
        eventlog::append_event(&mut text, t);
    }
    if eof {
        text.push_str("# eof\n");
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap();
    f.write_all(text.as_bytes()).unwrap();
}

#[test]
fn live_fleet_serves_fanout_and_resumes_from_checkpoints() {
    let dir = std::env::temp_dir().join(format!("trajfleet-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (grid, params) = mining_setup();
    let window = 6u64;

    let data = fleet_workload(11);
    let trajs = data.trajectories();
    assert!(trajs.len() >= 12, "workload too small for the split");
    let east: Vec<Trajectory> = trajs.iter().step_by(2).cloned().collect();
    let west: Vec<Trajectory> = trajs.iter().skip(1).step_by(2).cloned().collect();
    let (e1, w1) = (4usize, 3usize);

    let east_log = dir.join("east.events");
    let west_log = dir.join("west.events");
    append_log(&east_log, true, &east[..e1], false);
    append_log(&west_log, true, &west[..w1], false);

    let launch = || {
        trajfleet::Fleet::launch(
            trajfleet::parse_shard_specs(
                &format!("east={},west={}", east_log.display(), west_log.display()),
                Some(&dir),
            )
            .unwrap(),
            trajfleet::FleetConfig {
                grid: grid.clone(),
                params: params.clone(),
                window,
                poll: Duration::from_millis(5),
                growth_rate: 0.0,
                policy: trajdata::IngestPolicy::Strict,
                dr: trajfeed::DrConfig::default(),
            },
            trajserve::ServerConfig {
                addr: "127.0.0.1:0".into(),
                ..trajserve::ServerConfig::default()
            },
        )
        .unwrap()
    };

    // ---- first life: partial logs, no eof ----
    let fleet = launch();
    let addr = fleet.local_addr().unwrap();
    let handle = fleet.handle();
    assert_eq!(fleet.shard_names(), vec!["east", "west"]);
    let join = std::thread::spawn(move || fleet.run());

    wait_absorbed(addr, &[("east", e1 as u64), ("west", w1 as u64)]);

    // Shard-scoped top-k == batch mine over the shard's window.
    let east_expect = expected_topk(&east[..e1], &grid, &params, window);
    assert!(
        !east_expect.is_empty(),
        "workload must certify patterns for the test to bite"
    );
    let (status, body) = get(addr, "/v1/topk?shard=east");
    assert_eq!(status, 200);
    assert_served_matches(&body, &east_expect);

    // Unknown shard is a 404; POST routes without ?shard= are a 400.
    assert_eq!(get(addr, "/v1/topk?shard=nope").0, 404);

    // Per-shard metric labels are exposed.
    let (_, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("trajserve_shard_swaps_total{shard=\"east\"}"));
    assert!(metrics.contains("trajserve_shard_stream_arrivals{shard=\"west\"}"));
    assert!(metrics.contains("trajserve_fleet_shards 2"));

    // Drain: stop the server; ingesters flush their checkpoints.
    handle.shutdown();
    join.join().unwrap().unwrap();
    assert!(dir.join("east.ckpt").exists());
    assert!(dir.join("west.ckpt").exists());

    // ---- second life: append the rest (+ eof), relaunch, resume ----
    append_log(&east_log, false, &east[e1..], true);
    append_log(&west_log, false, &west[w1..], true);

    let fleet = launch();
    let addr = fleet.local_addr().unwrap();
    let handle = fleet.handle();
    let join = std::thread::spawn(move || fleet.run());

    wait_absorbed(
        addr,
        &[("east", east.len() as u64), ("west", west.len() as u64)],
    );

    // Resumed shards serve exactly what batch mining over the full
    // replay's window yields — the checkpoint skipped, not re-applied.
    let east_expect = expected_topk(&east, &grid, &params, window);
    let west_expect = expected_topk(&west, &grid, &params, window);
    let (status, body) = get(addr, "/v1/topk?shard=east");
    assert_eq!(status, 200);
    assert_served_matches(&body, &east_expect);
    let (status, body) = get(addr, "/v1/topk?shard=west");
    assert_eq!(status, 200);
    assert_served_matches(&body, &west_expect);

    // Fan-out == deterministic merge of the two expected lists.
    let shard_lists = vec![
        ("east".to_string(), east_expect),
        ("west".to_string(), west_expect),
    ];
    let expected_merge = reference_merge(&shard_lists, params.k);
    let (status, body) = get(addr, "/v1/topk");
    assert_eq!(status, 200);
    let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(doc["schema"].as_str(), Some("trajserve-fanout/v1"));
    let merged = doc["patterns"].as_array().unwrap();
    assert_eq!(merged.len(), expected_merge.len());
    for (got, (shard, want)) in merged.iter().zip(&expected_merge) {
        assert_eq!(got["shard"].as_str(), Some(*shard));
        let cells: Vec<u64> = got["pattern"]["cells"]
            .as_array()
            .unwrap()
            .iter()
            .map(|c| c.as_u64().unwrap())
            .collect();
        let want_cells: Vec<u64> = want.pattern.cells().iter().map(|c| c.0 as u64).collect();
        assert_eq!(cells, want_cells);
        assert_eq!(got["nm"].as_f64().unwrap().to_bits(), want.nm.to_bits());
    }
    // `shard=*` is the same fan-out document.
    let (_, star) = get(addr, "/v1/topk?shard=*");
    assert_eq!(star, body);

    handle.shutdown();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
