//! Property tests: the indexed probabilistic range / k-NN paths are
//! **bit-identical** to the index-free brute-force reference over random
//! σ-annotated datasets — every id, every probability, every position,
//! across the full σ (0 and 1e-6…5), τ (0…1 inclusive), and k (1…16)
//! ranges the query layer advertises, including out-of-window times and
//! growing uncertainty.

use proptest::prelude::*;
use trajdata::{SnapshotPoint, Trajectory};
use trajgeo::Point2;
use trajquery::QuerySet;

/// σ values spanning the advertised range: exact (0), near the 1e-6
/// floor, and the bulk 1e-6…5.0 band.
fn arb_sigma() -> impl Strategy<Value = f64> {
    (0u32..8, 1e-6f64..5.0).prop_map(|(sel, s)| match sel {
        0 => 0.0,
        1 => 1e-6 + (s / 5.0) * 1e-5,
        _ => s,
    })
}

fn arb_trajectory() -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0, arb_sigma()), 0..6).prop_map(|points| {
        Trajectory::new(
            points
                .into_iter()
                .map(|(x, y, sigma)| SnapshotPoint::new(Point2::new(x, y), sigma).unwrap())
                .collect(),
        )
        .unwrap()
    })
}

fn arb_set() -> impl Strategy<Value = QuerySet> {
    (prop::collection::vec(arb_trajectory(), 1..32), 0.0f64..0.5).prop_map(
        |(trajectories, growth_rate)| {
            let objects = trajectories
                .into_iter()
                .enumerate()
                .map(|(i, t)| (i as u64, t))
                .collect();
            QuerySet::build(objects, growth_rate)
        },
    )
}

/// τ over the closed interval `[0, 1]`, with the endpoints sampled
/// explicitly (τ = 0 exercises the index-off fallback, τ = 1 the
/// all-pruned extreme).
fn arb_tau() -> impl Strategy<Value = f64> {
    (0u32..8, 0.0f64..1.0).prop_map(|(sel, t)| match sel {
        0 => 0.0,
        1 => 1.0,
        _ => t,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn indexed_prange_is_bit_identical_to_bruteforce(
        set in arb_set(),
        px in -60.0f64..60.0,
        py in -60.0f64..60.0,
        delta in 0.0f64..3.0,
        t in -1.0f64..6.0,
        tau in arb_tau(),
    ) {
        let p = Point2::new(px, py);
        let indexed = set.prange(p, delta, t, tau).unwrap();
        let brute = set.prange_bruteforce(p, delta, t, tau).unwrap();
        prop_assert_eq!(indexed, brute);
    }

    #[test]
    fn indexed_pnn_is_bit_identical_to_bruteforce(
        set in arb_set(),
        px in -60.0f64..60.0,
        py in -60.0f64..60.0,
        delta in 0.0f64..3.0,
        t in -1.0f64..6.0,
        tau in arb_tau(),
        k in 1usize..17,
    ) {
        let p = Point2::new(px, py);
        let indexed = set.pnn(p, t, k, tau, delta).unwrap();
        let brute = set.pnn_bruteforce(p, t, k, tau, delta).unwrap();
        prop_assert_eq!(&indexed, &brute);
        prop_assert!(indexed.len() <= k);
        // The rank order is probability descending, ties id ascending.
        for w in indexed.windows(2) {
            prop_assert!(
                w[0].prob > w[1].prob || (w[0].prob == w[1].prob && w[0].id < w[1].id)
            );
        }
    }

    #[test]
    fn prange_results_respect_tau_and_rank_order(
        set in arb_set(),
        px in -60.0f64..60.0,
        py in -60.0f64..60.0,
        delta in 0.0f64..3.0,
        t in -1.0f64..6.0,
        tau in arb_tau(),
    ) {
        let p = Point2::new(px, py);
        let hits = set.prange(p, delta, t, tau).unwrap();
        for h in &hits {
            prop_assert!(h.prob >= tau);
            prop_assert!(h.prob <= 1.0);
        }
        for w in hits.windows(2) {
            prop_assert!(
                w[0].prob > w[1].prob || (w[0].prob == w[1].prob && w[0].id < w[1].id)
            );
        }
    }
}
