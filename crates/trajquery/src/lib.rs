//! trajquery — probabilistic queries over uncertain (σ-annotated)
//! trajectories.
//!
//! The miner consumes the paper's §3.1 reporting model (every snapshot
//! is `N(mean, σ²·I)`); this crate *serves* it, answering the query
//! classes of "Probabilistic NN Queries on Uncertain Moving Object
//! Trajectories" (PAPERS.md) over the same data:
//!
//! * **probabilistic range** — [`QuerySet::prange`]`(p, δ, t, τ)`: all
//!   objects whose interpolated snapshot at time `t` lies within `δ` of
//!   `p` with probability ≥ `τ`, where the probability is the paper's
//!   `Prob(l, σ, p, δ)` ([`trajgeo::stats::prob_within_delta`]);
//! * **probabilistic k-NN** — [`QuerySet::pnn`]`(p, t, k, τ, δ)`: the
//!   `k` highest-probability objects among those, with deterministic
//!   tie-breaking (probability descending, then object id ascending);
//! * **live pattern matching** — [`QuerySet::match_pattern`]: which
//!   objects score NM ≥ threshold against a pattern, via the exact
//!   per-trajectory contributions the streaming ledger folds
//!   ([`trajpattern::Scorer::nm_contributions`]).
//!
//! # Time and interpolation
//!
//! Trajectories are synchronized snapshot sequences; snapshot `i` *is*
//! time `t = i`. A fractional `t = i + f` (`0 < f < 1`) interpolates per
//! the §3.1 reporting model, with uncertainty growing with elapsed time
//! since the last (synthetic) report:
//!
//! ```text
//! mean(t)  = mean_i + f·(mean_{i+1} − mean_i)
//! sigma(t) = ((1−f)·σ_i + f·σ_{i+1}) · (1 + growth_rate·f)
//! ```
//!
//! `growth_rate ≥ 0` (default 0) mirrors
//! `mobility::reporting::UncertaintyModel::GrowingWithTime`. An object
//! whose trajectory does not cover `t` (shorter, or empty) is excluded.
//!
//! # Index pruning, and why it is exact
//!
//! [`QuerySet::build`] indexes each object's bounding box of snapshot
//! means, expanded by `8·σ_cap` where `σ_cap = max σ · (1+growth_rate)`
//! — the same δ+8σ probability-corridor convention `trajgeo::index`
//! documents. A range probe expands the query point by `δ`; if the two
//! rectangles are disjoint in some axis, then for every in-range `t`
//! the standardized interval endpoints lie beyond `±8`, so the object's
//! probability is below `Φ(−8) ≈ 6.2e−16` ([`TAIL_BOUND`]) in that axis
//! alone — and the 2-D probability is the *product* of the axis masses.
//! The index is therefore consulted only when `τ >` [`TAIL_BOUND`]
//! (below that, pruned objects could legitimately qualify and the scan
//! runs index-free), which makes the indexed result **bit-identical**
//! to the brute-force scan: both enumerate candidates in ascending
//! object order, score them with the same kernel, and sort with the
//! same comparator (property-tested in
//! `tests/query_bruteforce_identity.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use trajdata::{Dataset, SnapshotPoint, Trajectory};
use trajgeo::index::{HybridIndex, Rect};
use trajgeo::{Grid, Point2};
use trajpattern::{Pattern, Scorer};

/// How many standard deviations of probability corridor the index keeps
/// around each object's snapshot means (the δ+8σ convention shared with
/// the scoring fast path).
pub const SIGMA_SPAN: f64 = 8.0;

/// Upper bound on the within-δ probability of any object the index
/// prunes: one axis's standardized interval lies entirely beyond
/// [`SIGMA_SPAN`], so its mass is below `Φ(−8) ≈ 6.221e−16`, and the
/// 2-D probability is at most that axis mass. Index pruning is enabled
/// only for thresholds `τ > TAIL_BOUND`, keeping indexed results
/// bit-identical to the brute-force scan.
pub const TAIL_BOUND: f64 = 6.3e-16;

/// Why a query was rejected before touching any object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryError {
    /// The query point has a non-finite coordinate.
    BadPoint,
    /// `δ` is negative or non-finite.
    BadDelta(f64),
    /// `t` is non-finite (out-of-range finite times are not errors —
    /// they match nothing).
    BadTime(f64),
    /// `τ` is outside `[0, 1]` or non-finite.
    BadTau(f64),
    /// `k` is zero.
    BadK,
    /// The match threshold is NaN.
    BadThreshold,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::BadPoint => write!(f, "query point has non-finite coordinates"),
            QueryError::BadDelta(d) => write!(f, "delta {d} must be finite and >= 0"),
            QueryError::BadTime(t) => write!(f, "time {t} must be finite"),
            QueryError::BadTau(tau) => write!(f, "tau {tau} must be within [0, 1]"),
            QueryError::BadK => write!(f, "k must be at least 1"),
            QueryError::BadThreshold => write!(f, "match threshold must not be NaN"),
        }
    }
}

impl std::error::Error for QueryError {}

/// One probabilistic range / k-NN answer entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeMatch {
    /// The matched object's id.
    pub id: u64,
    /// `Prob(mean(t), σ(t), p, δ)` — probability the object's true
    /// location at `t` is within `δ` of the query point.
    pub prob: f64,
}

/// One live pattern-match answer entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternMatch {
    /// The matched object's id.
    pub id: u64,
    /// `NM(P, T)` — the object's normalized-match contribution.
    pub nm: f64,
}

/// The object's §3.1 snapshot interpolated to (possibly fractional)
/// time `t`, or `None` when the trajectory does not cover `t`.
pub fn snapshot_at(traj: &Trajectory, t: f64, growth_rate: f64) -> Option<SnapshotPoint> {
    if !t.is_finite() || t < 0.0 {
        return None;
    }
    let points = traj.points();
    let last = points.len().checked_sub(1)?;
    if t > last as f64 {
        return None;
    }
    let i = t.floor() as usize;
    let f = t - i as f64;
    if f == 0.0 {
        return Some(points[i]);
    }
    let (a, b) = (points[i], points[i + 1]);
    let mean = Point2::new(
        a.mean.x + f * (b.mean.x - a.mean.x),
        a.mean.y + f * (b.mean.y - a.mean.y),
    );
    let sigma = ((1.0 - f) * a.sigma + f * b.sigma) * (1.0 + growth_rate * f);
    SnapshotPoint::new(mean, sigma)
}

/// The σ-expanded index rectangle covering every snapshot the object
/// can interpolate to: the bounding box of its means, expanded by
/// [`SIGMA_SPAN`]`·σ_cap`. `None` for empty trajectories (they can
/// never match).
fn object_rect(traj: &Trajectory, growth_rate: f64) -> Option<Rect> {
    let mut points = traj.points().iter();
    let first = points.next()?;
    let mut rect = Rect::point(first.mean);
    let mut sigma_cap = first.sigma;
    for s in points {
        rect = rect.union(Rect::point(s.mean));
        sigma_cap = sigma_cap.max(s.sigma);
    }
    Some(rect.expanded(SIGMA_SPAN * sigma_cap * (1.0 + growth_rate)))
}

/// A queryable set of uncertain objects: `(id, trajectory)` pairs plus
/// the σ-expanded-bbox spatial index over them. Built once (per mined
/// store, or per live window publish) and shared immutably by queries.
#[derive(Debug)]
pub struct QuerySet {
    objects: Vec<(u64, Trajectory)>,
    growth_rate: f64,
    index: Option<HybridIndex>,
}

impl QuerySet {
    /// Builds the set and its index. `growth_rate` is the §3.1
    /// uncertainty growth per unit of elapsed time since the last
    /// snapshot (non-finite or negative values are treated as 0).
    pub fn build(objects: Vec<(u64, Trajectory)>, growth_rate: f64) -> QuerySet {
        let growth_rate = if growth_rate.is_finite() && growth_rate > 0.0 {
            growth_rate
        } else {
            0.0
        };
        let entries: Vec<(Rect, u32)> = objects
            .iter()
            .enumerate()
            .filter_map(|(i, (_, traj))| Some((object_rect(traj, growth_rate)?, i as u32)))
            .collect();
        let index = if entries.is_empty() {
            None
        } else {
            Some(HybridIndex::build(entries))
        };
        QuerySet {
            objects,
            growth_rate,
            index,
        }
    }

    /// Builds the set from a mined dataset; object ids are the dataset
    /// positions (the ids every offline artifact reports).
    pub fn from_dataset(data: &Dataset, growth_rate: f64) -> QuerySet {
        let objects = data
            .trajectories()
            .iter()
            .enumerate()
            .map(|(i, t)| (i as u64, t.clone()))
            .collect();
        QuerySet::build(objects, growth_rate)
    }

    /// The objects, in build order.
    pub fn objects(&self) -> &[(u64, Trajectory)] {
        &self.objects
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the set holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The configured uncertainty growth rate.
    pub fn growth_rate(&self) -> f64 {
        self.growth_rate
    }

    /// `(min, max)` event time covered by any object — `(0, max len−1)`
    /// — or `None` when every trajectory is empty. `/v1/shards` exposes
    /// this so clients can tell whether a query `t` is in-window before
    /// paying for a fan-out.
    pub fn time_bounds(&self) -> Option<(f64, f64)> {
        self.objects
            .iter()
            .filter_map(|(_, t)| t.len().checked_sub(1))
            .max()
            .map(|max| (0.0, max as f64))
    }

    fn validate(p: Point2, delta: f64, t: f64, tau: f64) -> Result<(), QueryError> {
        if !p.is_finite() {
            return Err(QueryError::BadPoint);
        }
        if !delta.is_finite() || delta < 0.0 {
            return Err(QueryError::BadDelta(delta));
        }
        if !t.is_finite() {
            return Err(QueryError::BadTime(t));
        }
        if !tau.is_finite() || !(0.0..=1.0).contains(&tau) {
            return Err(QueryError::BadTau(tau));
        }
        Ok(())
    }

    /// Scores `candidates` (ascending object positions) and returns the
    /// qualifying matches in rank order — the one scoring loop both the
    /// indexed and the brute-force paths run.
    fn scan(
        &self,
        candidates: impl Iterator<Item = usize>,
        p: Point2,
        delta: f64,
        t: f64,
        tau: f64,
    ) -> Vec<RangeMatch> {
        let mut out = Vec::new();
        for i in candidates {
            let (id, traj) = &self.objects[i];
            let Some(s) = snapshot_at(traj, t, self.growth_rate) else {
                continue;
            };
            let prob = s.prob_near(p, delta);
            if prob >= tau {
                out.push(RangeMatch { id: *id, prob });
            }
        }
        // Probability descending, then id ascending — the deterministic
        // rank order every layer above (fan-out merge, CLI, CI diffs)
        // relies on. Probabilities are finite by construction.
        out.sort_by(|a, b| {
            b.prob
                .partial_cmp(&a.prob)
                .expect("probabilities are finite")
                .then(a.id.cmp(&b.id))
        });
        out
    }

    /// Probabilistic range query: objects within `δ` of `p` at time `t`
    /// with probability ≥ `τ`, pruned by the σ-expanded-bbox index
    /// (bit-identical to [`QuerySet::prange_bruteforce`]).
    pub fn prange(
        &self,
        p: Point2,
        delta: f64,
        t: f64,
        tau: f64,
    ) -> Result<Vec<RangeMatch>, QueryError> {
        QuerySet::validate(p, delta, t, tau)?;
        // The index may only skip objects whose probability is provably
        // below τ; under TAIL_BOUND even a fully-pruned object could
        // qualify, so the scan runs index-free.
        match (&self.index, tau > TAIL_BOUND) {
            (Some(index), true) => {
                let probe = Rect::point(p).expanded(delta);
                let hits = index.query(&probe);
                Ok(self.scan(hits.into_iter().map(|i| i as usize), p, delta, t, tau))
            }
            _ => Ok(self.scan(0..self.objects.len(), p, delta, t, tau)),
        }
    }

    /// Index-free reference scan for [`QuerySet::prange`] — the oracle
    /// the identity proptests (and the CI smoke diff) compare against.
    pub fn prange_bruteforce(
        &self,
        p: Point2,
        delta: f64,
        t: f64,
        tau: f64,
    ) -> Result<Vec<RangeMatch>, QueryError> {
        QuerySet::validate(p, delta, t, tau)?;
        Ok(self.scan(0..self.objects.len(), p, delta, t, tau))
    }

    /// Probabilistic k-NN: the `k` objects most likely to be within `δ`
    /// of `p` at time `t`, among those with probability ≥ `τ`.
    /// "Nearest" ranks by within-δ probability — probability
    /// descending, ties by object id ascending — so results are
    /// bit-stable.
    pub fn pnn(
        &self,
        p: Point2,
        t: f64,
        k: usize,
        tau: f64,
        delta: f64,
    ) -> Result<Vec<RangeMatch>, QueryError> {
        if k == 0 {
            return Err(QueryError::BadK);
        }
        let mut out = self.prange(p, delta, t, tau)?;
        out.truncate(k);
        Ok(out)
    }

    /// Index-free reference for [`QuerySet::pnn`].
    pub fn pnn_bruteforce(
        &self,
        p: Point2,
        t: f64,
        k: usize,
        tau: f64,
        delta: f64,
    ) -> Result<Vec<RangeMatch>, QueryError> {
        if k == 0 {
            return Err(QueryError::BadK);
        }
        let mut out = self.prange_bruteforce(p, delta, t, tau)?;
        out.truncate(k);
        Ok(out)
    }

    /// Which objects match `pattern` with `NM(P, T) ≥ threshold`:
    /// per-object normalized match via the scorer's contribution hook
    /// (each value is exactly what [`trajpattern::Scorer::query`] sums
    /// over the dataset), ranked NM descending, ties by id ascending.
    pub fn match_pattern(
        &self,
        grid: &Grid,
        delta: f64,
        min_prob: f64,
        threads: usize,
        pattern: &Pattern,
        threshold: f64,
    ) -> Result<Vec<PatternMatch>, QueryError> {
        if threshold.is_nan() {
            return Err(QueryError::BadThreshold);
        }
        if self.objects.is_empty() {
            return Ok(Vec::new());
        }
        let data: Dataset = self.objects.iter().map(|(_, t)| t.clone()).collect();
        let scorer = Scorer::with_threads(&data, grid, delta, min_prob, threads);
        let contributions = scorer.nm_contributions(pattern);
        let mut out: Vec<PatternMatch> = self
            .objects
            .iter()
            .zip(&contributions)
            .filter(|(_, nm)| nm.is_finite() && **nm >= threshold)
            .map(|((id, _), nm)| PatternMatch { id: *id, nm: *nm })
            .collect();
        out.sort_by(|a, b| {
            b.nm.partial_cmp(&a.nm)
                .expect("retained NMs are finite")
                .then(a.id.cmp(&b.id))
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(points: &[(f64, f64, f64)]) -> Trajectory {
        Trajectory::new(
            points
                .iter()
                .map(|&(x, y, s)| SnapshotPoint::new(Point2::new(x, y), s).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn snapshot_at_interpolates_mean_and_sigma() {
        let t = traj(&[(0.0, 0.0, 0.1), (1.0, 2.0, 0.3)]);
        let s = snapshot_at(&t, 0.5, 0.0).unwrap();
        assert_eq!(s.mean, Point2::new(0.5, 1.0));
        assert!((s.sigma - 0.2).abs() < 1e-12);
        // Integer times are the snapshots themselves.
        assert_eq!(snapshot_at(&t, 0.0, 0.0).unwrap(), *t.get(0).unwrap());
        assert_eq!(snapshot_at(&t, 1.0, 0.0).unwrap(), *t.get(1).unwrap());
    }

    #[test]
    fn snapshot_at_grows_uncertainty_with_elapsed_time() {
        let t = traj(&[(0.0, 0.0, 0.2), (1.0, 0.0, 0.2)]);
        let s = snapshot_at(&t, 0.5, 1.0).unwrap();
        // ((0.5·0.2 + 0.5·0.2)) · (1 + 1.0·0.5) = 0.3
        assert!((s.sigma - 0.3).abs() < 1e-12);
        // At the snapshots themselves nothing has elapsed: base σ.
        assert_eq!(snapshot_at(&t, 1.0, 1.0).unwrap().sigma, 0.2);
    }

    #[test]
    fn snapshot_at_rejects_uncovered_times() {
        let t = traj(&[(0.0, 0.0, 0.1), (1.0, 0.0, 0.1)]);
        assert!(snapshot_at(&t, -0.5, 0.0).is_none());
        assert!(snapshot_at(&t, 1.25, 0.0).is_none());
        assert!(snapshot_at(&t, f64::NAN, 0.0).is_none());
        assert!(snapshot_at(&Trajectory::default(), 0.0, 0.0).is_none());
    }

    #[test]
    fn prange_filters_sorts_and_validates() {
        let set = QuerySet::build(
            vec![
                (7, traj(&[(0.0, 0.0, 0.05)])),
                (3, traj(&[(0.0, 0.0, 0.05)])),
                (5, traj(&[(10.0, 10.0, 0.05)])),
            ],
            0.0,
        );
        let p = Point2::new(0.0, 0.0);
        let hits = set.prange(p, 0.1, 0.0, 0.5).unwrap();
        // Equal probabilities tie-break by id ascending.
        assert_eq!(hits.len(), 2);
        assert_eq!((hits[0].id, hits[1].id), (3, 7));
        assert_eq!(hits[0].prob, hits[1].prob);

        assert_eq!(
            set.prange(p, -1.0, 0.0, 0.5),
            Err(QueryError::BadDelta(-1.0))
        );
        assert!(matches!(
            set.prange(p, 0.1, f64::NAN, 0.5),
            Err(QueryError::BadTime(t)) if t.is_nan()
        ));
        assert_eq!(set.prange(p, 0.1, 0.0, 1.5), Err(QueryError::BadTau(1.5)));
        assert_eq!(
            set.prange(Point2::new(f64::NAN, 0.0), 0.1, 0.0, 0.5),
            Err(QueryError::BadPoint)
        );
    }

    #[test]
    fn pnn_truncates_the_rank_order() {
        let set = QuerySet::build(
            vec![
                (0, traj(&[(0.0, 0.0, 0.1)])),
                (1, traj(&[(0.3, 0.0, 0.1)])),
                (2, traj(&[(0.6, 0.0, 0.1)])),
            ],
            0.0,
        );
        let p = Point2::new(0.0, 0.0);
        let all = set.pnn(p, 0.0, 3, 0.0, 0.2).unwrap();
        assert_eq!(all.len(), 3);
        assert!(all[0].prob >= all[1].prob && all[1].prob >= all[2].prob);
        assert_eq!(all[0].id, 0);
        let top = set.pnn(p, 0.0, 1, 0.0, 0.2).unwrap();
        assert_eq!(top, vec![all[0]]);
        assert_eq!(set.pnn(p, 0.0, 0, 0.0, 0.2), Err(QueryError::BadK));
    }

    #[test]
    fn far_objects_are_pruned_identically() {
        // One near cluster, one object far outside the probe: the
        // indexed path skips it, the brute force scores it to ~0 —
        // same answer.
        let set = QuerySet::build(
            vec![
                (0, traj(&[(0.5, 0.5, 0.02)])),
                (1, traj(&[(400.0, -300.0, 0.02)])),
            ],
            0.0,
        );
        let p = Point2::new(0.5, 0.5);
        let indexed = set.prange(p, 0.05, 0.0, 0.1).unwrap();
        let brute = set.prange_bruteforce(p, 0.05, 0.0, 0.1).unwrap();
        assert_eq!(indexed, brute);
        assert_eq!(indexed.len(), 1);
        assert_eq!(indexed[0].id, 0);
    }

    #[test]
    fn tau_zero_disables_index_pruning() {
        // τ = 0 must return prob-0 objects too, which the index cannot
        // see — the gate falls back to the full scan.
        let set = QuerySet::build(
            vec![
                (0, traj(&[(0.5, 0.5, 0.0)])),
                (1, traj(&[(900.0, 900.0, 0.0)])),
            ],
            0.0,
        );
        let p = Point2::new(0.5, 0.5);
        let hits = set.prange(p, 0.05, 0.0, 0.0).unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[0].prob, 1.0);
        assert_eq!(hits[1].prob, 0.0);
    }

    #[test]
    fn time_bounds_cover_the_longest_object() {
        let set = QuerySet::build(
            vec![
                (0, Trajectory::default()),
                (
                    1,
                    traj(&[(0.0, 0.0, 0.1), (1.0, 0.0, 0.1), (2.0, 0.0, 0.1)]),
                ),
            ],
            0.0,
        );
        assert_eq!(set.time_bounds(), Some((0.0, 2.0)));
        assert_eq!(
            QuerySet::build(vec![(0, Trajectory::default())], 0.0).time_bounds(),
            None
        );
        assert_eq!(QuerySet::build(Vec::new(), 0.0).time_bounds(), None);
    }

    #[test]
    fn match_pattern_ranks_by_nm() {
        use trajgeo::{BBox, CellId};
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        // Object 0 walks the bottom row; object 1 sits far from it.
        let set = QuerySet::build(
            vec![
                (0, traj(&[(0.125, 0.125, 0.02), (0.375, 0.125, 0.02)])),
                (1, traj(&[(0.875, 0.875, 0.02), (0.875, 0.875, 0.02)])),
            ],
            0.0,
        );
        let pattern = Pattern::new(vec![CellId(0), CellId(1)]).unwrap();
        let all = set
            .match_pattern(&grid, 0.125, 1e-9, 1, &pattern, f64::NEG_INFINITY)
            .unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].id, 0);
        assert!(all[0].nm > all[1].nm);
        let thresholded = set
            .match_pattern(&grid, 0.125, 1e-9, 1, &pattern, all[0].nm)
            .unwrap();
        assert_eq!(thresholded.len(), 1);
        assert_eq!(thresholded[0].id, 0);
        assert_eq!(
            set.match_pattern(&grid, 0.125, 1e-9, 1, &pattern, f64::NAN),
            Err(QueryError::BadThreshold)
        );
    }
}
