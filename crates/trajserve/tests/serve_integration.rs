//! End-to-end tests over real sockets: every route, bit-identity of
//! `/score` against the library scorer, panic isolation, backpressure,
//! hot reload, and graceful shutdown.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use trajdata::Dataset;
use trajgeo::Grid;
use trajpattern::{Miner, MiningParams, Pattern, Scorer};
use trajserve::{Server, ServerConfig, ServerHandle, Snapshot};

fn mined() -> (Snapshot, Dataset) {
    let cfg = datagen::ZebraConfig {
        num_groups: 2,
        zebras_per_group: 5,
        snapshots: 12,
        ..datagen::ZebraConfig::default()
    };
    let data = datagen::observe_directly(&cfg.paths(7), 0.01, 99);
    let bbox = data.bounding_box().expect("nonempty dataset");
    let grid = Grid::new(bbox, 8, 8).unwrap();
    let delta = grid.cell_width().min(grid.cell_height()) * 0.5;
    let params = MiningParams::new(5, delta)
        .unwrap()
        .with_min_len(2)
        .unwrap()
        .with_max_len(4)
        .unwrap()
        .with_gamma(delta * 4.0)
        .unwrap();
    let out = Miner::new(&data, &grid)
        .params(params.clone())
        .mine()
        .unwrap();
    assert!(!out.patterns.is_empty(), "test workload must mine patterns");
    (Snapshot::from_outcome(&out, &grid, &params), data)
}

fn start(
    snapshot: Snapshot,
    mut cfg: ServerConfig,
) -> (
    SocketAddr,
    ServerHandle,
    thread::JoinHandle<std::io::Result<()>>,
) {
    cfg.addr = "127.0.0.1:0".into();
    let server = Server::bind(snapshot, cfg).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (addr, handle, join)
}

fn stop(handle: &ServerHandle, join: thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    join.join().expect("server thread").expect("clean shutdown");
}

/// One `Connection: close` request; returns (status, body).
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    headers: &[(&str, &str)],
) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n");
    for (name, value) in headers {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    match body {
        Some(b) => req.push_str(&format!("Content-Length: {}\r\n\r\n{b}", b.len())),
        None => req.push_str("\r\n"),
    }
    s.write_all(req.as_bytes()).unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let payload = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

#[test]
fn routes_answer_and_score_is_bit_identical() {
    let (snapshot, data) = mined();
    let reference_patterns: Vec<Pattern> = snapshot
        .patterns
        .iter()
        .map(|m| m.pattern.clone())
        .collect();
    let reference_grid = snapshot.grid.clone();
    let (delta, min_prob) = (snapshot.params.delta, snapshot.params.min_prob);
    let k = snapshot.patterns.len();
    let (addr, handle, join) = start(snapshot, ServerConfig::default());

    // /healthz
    let (status, body) = request(addr, "GET", "/healthz", None, &[]);
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // /topk is the versioned snapshot itself.
    let (status, body) = request(addr, "GET", "/topk", None, &[]);
    assert_eq!(status, 200);
    let topk: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(topk["schema"].as_str().unwrap(), trajserve::SCHEMA);
    assert_eq!(topk["patterns"].as_array().unwrap().len(), k);
    assert!(topk.get("groups").is_some());

    // /score over a fresh query dataset must be bit-identical to the
    // library Scorer on the same patterns — the core acceptance check.
    let query: Dataset = data.iter().take(4).cloned().collect();
    let (status, body) = request(addr, "POST", "/score", Some(&query.to_json()), &[]);
    assert_eq!(status, 200, "score failed: {body}");
    let scored: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(scored["trajectories"].as_u64().unwrap(), 4);
    let served: Vec<f64> = scored["nms"]
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    let direct = Scorer::with_threads(&query, &reference_grid, delta, min_prob, 1)
        .score_batch(&reference_patterns);
    assert_eq!(served.len(), direct.len());
    for (i, (s, d)) in served.iter().zip(&direct).enumerate() {
        assert_eq!(
            s.to_bits(),
            d.to_bits(),
            "pattern {i}: served {s} != direct {d}"
        );
    }

    // /match labels the first trajectory with the best pattern + group.
    let (status, body) = request(addr, "POST", "/match", Some(&query.to_json()), &[]);
    assert_eq!(status, 200);
    let matched: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(matched["nms"].as_array().unwrap().len(), k);
    let best = &matched["best"];
    assert!(
        best.get("index").is_some(),
        "best should be present: {body}"
    );
    assert!(best["nm"].as_f64().unwrap().is_finite());

    // /predict returns a (possibly empty) distribution for any input.
    let (status, body) = request(addr, "POST", "/predict", Some(&query.to_json()), &[]);
    assert_eq!(status, 200);
    let predicted: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(predicted.get("velocity").is_some());
    assert!(predicted["distribution"].as_array().is_some());

    // Error envelope: every failure is structured JSON with a machine
    // code and a human message, matching the `/v1` schema.
    let assert_error = |status: u16, body: &str, want_status: u16, want_code: &str| {
        assert_eq!(status, want_status, "body: {body}");
        let v: serde_json::Value = serde_json::from_str(body).expect("error body is JSON");
        assert_eq!(v["error"]["code"].as_str().unwrap(), want_code, "{body}");
        assert!(
            !v["error"]["message"].as_str().unwrap().is_empty(),
            "{body}"
        );
    };
    let (status, body) = request(addr, "POST", "/score", Some("not json"), &[]);
    assert_error(status, &body, 400, "bad_request");
    let (status, body) = request(addr, "GET", "/nope", None, &[]);
    assert_error(status, &body, 404, "not_found");
    let (status, body) = request(addr, "GET", "/score", None, &[]);
    assert_error(status, &body, 405, "method_not_allowed");
    let (status, body) = request(addr, "POST", "/match", Some("{\"trajectories\": []}"), &[]);
    assert_error(status, &body, 400, "bad_request");
    let (status, body) = request(addr, "POST", "/v1/score", Some("not json"), &[]);
    assert_error(status, &body, 400, "bad_request");

    stop(&handle, join);
}

#[test]
fn v1_routes_share_schema_and_agree_with_deprecated_aliases() {
    let (snapshot, data) = mined();
    let reference_patterns: Vec<Pattern> = snapshot
        .patterns
        .iter()
        .map(|m| m.pattern.clone())
        .collect();
    let reference_grid = snapshot.grid.clone();
    let (delta, min_prob) = (snapshot.params.delta, snapshot.params.min_prob);
    let k = snapshot.patterns.len();
    let (addr, handle, join) = start(snapshot, ServerConfig::default());
    let query: Dataset = data.iter().take(4).cloned().collect();

    // /v1/topk serves the same snapshot body as the deprecated /topk.
    let (status, v1_topk) = request(addr, "GET", "/v1/topk", None, &[]);
    assert_eq!(status, 200);
    let (_, old_topk) = request(addr, "GET", "/topk", None, &[]);
    assert_eq!(v1_topk, old_topk, "alias must serve the identical body");

    // /v1/score: shared envelope, NMs bit-identical to the library
    // scorer — and to the deprecated /score alias.
    let (status, body) = request(addr, "POST", "/v1/score", Some(&query.to_json()), &[]);
    assert_eq!(status, 200, "v1 score failed: {body}");
    let scored: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(scored["schema"].as_str().unwrap(), trajserve::QUERY_SCHEMA);
    assert_eq!(scored["query"].as_str().unwrap(), "score");
    assert_eq!(scored["trajectories"].as_u64().unwrap(), 4);
    assert_eq!(scored["patterns"].as_array().unwrap().len(), k);
    let served: Vec<f64> = scored["nms"]
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    let direct = Scorer::with_threads(&query, &reference_grid, delta, min_prob, 1)
        .score_batch(&reference_patterns);
    for (s, d) in served.iter().zip(&direct) {
        assert_eq!(s.to_bits(), d.to_bits());
    }
    let (_, old_body) = request(addr, "POST", "/score", Some(&query.to_json()), &[]);
    let old: serde_json::Value = serde_json::from_str(&old_body).unwrap();
    for (s, o) in served.iter().zip(old["nms"].as_array().unwrap()) {
        assert_eq!(s.to_bits(), o.as_f64().unwrap().to_bits());
    }

    // Index correctness: disabling index pruning must return the
    // byte-identical response body.
    let with_options = |options: &str| {
        let v: serde_json::Value = serde_json::from_str(&query.to_json()).unwrap();
        let trajs = serde_json::to_string(&v["trajectories"]).unwrap();
        format!("{{\"trajectories\": {trajs}, \"options\": {options}}}")
    };
    let (status, unindexed) = request(
        addr,
        "POST",
        "/v1/score",
        Some(&with_options("{\"use_index\": false}")),
        &[],
    );
    assert_eq!(status, 200);
    assert_eq!(body, unindexed, "indexed and unindexed bodies must agree");
    let (status, matched) = request(addr, "POST", "/v1/match", Some(&query.to_json()), &[]);
    assert_eq!(status, 200);
    let (status, matched_unindexed) = request(
        addr,
        "POST",
        "/v1/match",
        Some(&with_options("{\"use_index\": false}")),
        &[],
    );
    assert_eq!(status, 200);
    assert_eq!(matched, matched_unindexed);
    let m: serde_json::Value = serde_json::from_str(&matched).unwrap();
    assert_eq!(m["query"].as_str().unwrap(), "match");
    assert!(m["best"]["nm"].as_f64().unwrap().is_finite());
    // The deprecated /match alias agrees on the winner.
    let (_, old_match) = request(addr, "POST", "/match", Some(&query.to_json()), &[]);
    let om: serde_json::Value = serde_json::from_str(&old_match).unwrap();
    assert_eq!(
        m["best"]["index"].as_u64().unwrap(),
        om["best"]["index"].as_u64().unwrap()
    );

    // A pattern filter restricts scoring to the named snapshot indices.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/score",
        Some(&with_options("{\"patterns\": [0]}")),
        &[],
    );
    assert_eq!(status, 200);
    let filtered: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(filtered["patterns"].as_array().unwrap().len(), 1);
    assert_eq!(
        filtered["nms"].as_array().unwrap()[0]
            .as_f64()
            .unwrap()
            .to_bits(),
        served[0].to_bits()
    );
    // An out-of-range filter is a structured client error.
    let (status, body) = request(
        addr,
        "POST",
        "/v1/score",
        Some(&with_options("{\"patterns\": [999]}")),
        &[],
    );
    assert_eq!(status, 400);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["error"]["code"].as_str().unwrap(), "bad_request");

    // /v1/predict shares the envelope too.
    let (status, body) = request(addr, "POST", "/v1/predict", Some(&query.to_json()), &[]);
    assert_eq!(status, 200);
    let p: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(p["schema"].as_str().unwrap(), trajserve::QUERY_SCHEMA);
    assert_eq!(p["query"].as_str().unwrap(), "predict");
    assert!(p["distribution"].as_array().is_some());

    // /metrics tracks the v1 routes and the /v1/score histogram.
    let (_, metrics) = request(addr, "GET", "/metrics", None, &[]);
    assert!(metrics.contains("trajserve_requests_total{endpoint=\"v1_score\"}"));
    assert!(metrics.contains("trajserve_v1_score_seconds_count"));

    stop(&handle, join);
}

#[test]
fn object_query_routes_answer_statically_and_match_the_library() {
    let (snapshot, data) = mined();
    let grid = snapshot.grid.clone();
    let (delta_param, min_prob) = (snapshot.params.delta, snapshot.params.min_prob);
    let pattern = snapshot.patterns[0].pattern.clone();
    let bbox = data.bounding_box().unwrap();
    let p = trajgeo::Point2::new(
        (bbox.min().x + bbox.max().x) / 2.0,
        (bbox.min().y + bbox.max().y) / 2.0,
    );
    let (addr, handle, join) = start(snapshot, ServerConfig::default());

    let trajs = {
        let v: serde_json::Value = serde_json::from_str(&data.to_json()).unwrap();
        serde_json::to_string(&v["trajectories"]).unwrap()
    };
    let (delta, t, tau, growth) = (0.2f64, 3.5f64, 0.01f64, 0.1f64);
    let reference = trajquery::QuerySet::build(
        data.iter()
            .enumerate()
            .map(|(i, tr)| (i as u64, tr.clone()))
            .collect(),
        growth,
    );

    // /v1/prange over posted trajectories is bit-identical to the
    // library query set.
    let body = format!(
        r#"{{"p": [{}, {}], "delta": {delta}, "t": {t}, "tau": {tau},
            "trajectories": {trajs}, "options": {{"growth_rate": {growth}}}}}"#,
        p.x, p.y
    );
    let (status, resp) = request(addr, "POST", "/v1/prange", Some(&body), &[]);
    assert_eq!(status, 200, "{resp}");
    let doc: serde_json::Value = serde_json::from_str(&resp).unwrap();
    assert_eq!(doc["schema"].as_str().unwrap(), trajserve::QUERY_SCHEMA);
    assert_eq!(doc["query"].as_str().unwrap(), "prange");
    assert_eq!(doc["objects"].as_u64().unwrap() as usize, data.len());
    let expect = reference.prange(p, delta, t, tau).unwrap();
    assert!(!expect.is_empty(), "query must hit for the test to bite");
    let served = doc["matches"].as_array().unwrap();
    assert_eq!(served.len(), expect.len());
    for (got, want) in served.iter().zip(&expect) {
        assert_eq!(got["id"].as_u64().unwrap(), want.id);
        assert_eq!(got["prob"].as_f64().unwrap().to_bits(), want.prob.to_bits());
    }

    // Disabling the index returns the byte-identical response.
    let brute = format!(
        r#"{{"p": [{}, {}], "delta": {delta}, "t": {t}, "tau": {tau},
            "trajectories": {trajs},
            "options": {{"growth_rate": {growth}, "use_index": false}}}}"#,
        p.x, p.y
    );
    let (status, brute_resp) = request(addr, "POST", "/v1/prange", Some(&brute), &[]);
    assert_eq!(status, 200);
    assert_eq!(
        resp, brute_resp,
        "indexed and brute-force bodies must agree"
    );

    // /v1/pnn truncates the same ranking to k.
    let k = 3usize;
    let body = format!(
        r#"{{"p": [{}, {}], "delta": {delta}, "t": {t}, "tau": {tau}, "k": {k},
            "trajectories": {trajs}, "options": {{"growth_rate": {growth}}}}}"#,
        p.x, p.y
    );
    let (status, resp) = request(addr, "POST", "/v1/pnn", Some(&body), &[]);
    assert_eq!(status, 200, "{resp}");
    let doc: serde_json::Value = serde_json::from_str(&resp).unwrap();
    assert_eq!(doc["query"].as_str().unwrap(), "pnn");
    assert_eq!(doc["k"].as_u64().unwrap() as usize, k);
    let expect = reference.pnn(p, t, k, tau, delta).unwrap();
    let served = doc["matches"].as_array().unwrap();
    assert_eq!(served.len(), expect.len());
    for (got, want) in served.iter().zip(&expect) {
        assert_eq!(got["id"].as_u64().unwrap(), want.id);
        assert_eq!(got["prob"].as_f64().unwrap().to_bits(), want.prob.to_bits());
    }

    // /v1/matchlive scores NM over the posted objects with the served
    // snapshot's grid and mining parameters.
    let cells: Vec<u32> = pattern.cells().iter().map(|c| c.0).collect();
    let body = format!(r#"{{"pattern": {cells:?}, "threshold": -1e9, "trajectories": {trajs}}}"#);
    let (status, resp) = request(addr, "POST", "/v1/matchlive", Some(&body), &[]);
    assert_eq!(status, 200, "{resp}");
    let doc: serde_json::Value = serde_json::from_str(&resp).unwrap();
    assert_eq!(doc["query"].as_str().unwrap(), "matchlive");
    let no_growth = trajquery::QuerySet::build(
        data.iter()
            .enumerate()
            .map(|(i, tr)| (i as u64, tr.clone()))
            .collect(),
        0.0,
    );
    let expect = no_growth
        .match_pattern(&grid, delta_param, min_prob, 1, &pattern, -1e9)
        .unwrap();
    assert!(
        !expect.is_empty(),
        "pattern must match for the test to bite"
    );
    let served = doc["matches"].as_array().unwrap();
    assert_eq!(served.len(), expect.len());
    for (got, want) in served.iter().zip(&expect) {
        assert_eq!(got["id"].as_u64().unwrap(), want.id);
        assert_eq!(got["nm"].as_f64().unwrap().to_bits(), want.nm.to_bits());
    }

    // Client errors are structured 400s: missing p, missing
    // trajectories (static mode), out-of-range tau, bad pattern.
    for bad in [
        format!(r#"{{"delta": 0.1, "t": 1.0, "trajectories": {trajs}}}"#),
        r#"{"p": [0.5, 0.5], "delta": 0.1, "t": 1.0}"#.to_string(),
        format!(
            r#"{{"p": [0.5, 0.5], "delta": 0.1, "t": 1.0, "tau": 1.5, "trajectories": {trajs}}}"#
        ),
        format!(r#"{{"pattern": [], "trajectories": {trajs}}}"#),
    ] {
        let route = if bad.contains("pattern") {
            "/v1/matchlive"
        } else {
            "/v1/prange"
        };
        let (status, resp) = request(addr, "POST", route, Some(&bad), &[]);
        assert_eq!(status, 400, "{bad} => {resp}");
        let v: serde_json::Value = serde_json::from_str(&resp).unwrap();
        assert_eq!(v["error"]["code"].as_str().unwrap(), "bad_request");
    }
    // GET on a POST-only query route is a 405.
    let (status, _) = request(addr, "GET", "/v1/pnn", None, &[]);
    assert_eq!(status, 405);

    // The new routes are tracked in /metrics.
    let (_, metrics) = request(addr, "GET", "/metrics", None, &[]);
    assert!(metrics.contains("trajserve_requests_total{endpoint=\"v1_prange\"}"));
    assert!(metrics.contains("trajserve_requests_total{endpoint=\"v1_pnn\"}"));
    assert!(metrics.contains("trajserve_requests_total{endpoint=\"v1_matchlive\"}"));

    stop(&handle, join);
}

#[test]
fn injected_panic_gets_500_and_server_keeps_serving() {
    let (snapshot, data) = mined();
    let cfg = ServerConfig {
        allow_panic_injection: true,
        workers: 2,
        ..ServerConfig::default()
    };
    let (addr, handle, join) = start(snapshot, cfg);

    // Poison a request on purpose; the worker must answer 500.
    let (status, body) = request(
        addr,
        "GET",
        "/topk",
        None,
        &[("x-trajserve-inject-panic", "1")],
    );
    assert_eq!(status, 500, "poisoned request should 500, got: {body}");

    // The server keeps answering afterwards — on every route.
    let (status, _) = request(addr, "GET", "/healthz", None, &[]);
    assert_eq!(status, 200);
    let query: Dataset = data.iter().take(2).cloned().collect();
    let (status, _) = request(addr, "POST", "/score", Some(&query.to_json()), &[]);
    assert_eq!(status, 200);

    // The panic is visible in /metrics.
    let (status, metrics) = request(addr, "GET", "/metrics", None, &[]);
    assert_eq!(status, 200);
    let panics = metrics
        .lines()
        .find_map(|l| l.strip_prefix("trajserve_request_panics_total "))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("panics counter present");
    assert!(panics >= 1);
    assert!(metrics.contains("trajserve_requests_total{endpoint=\"score\"} 1"));
    assert!(metrics.contains("trajserve_scored_trajectories_total 2"));

    stop(&handle, join);
}

#[test]
fn keep_alive_connection_serves_sequential_requests() {
    let (snapshot, _) = mined();
    let (addr, handle, join) = start(snapshot, ServerConfig::default());

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for round in 0..3 {
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        // Read exactly one response: head, then Content-Length bytes.
        let mut text = String::new();
        let mut byte = [0u8; 1];
        while !text.ends_with("\r\n\r\n") {
            s.read_exact(&mut byte).unwrap();
            text.push(byte[0] as char);
        }
        assert!(text.starts_with("HTTP/1.1 200"), "round {round}: {text}");
        assert!(text.to_ascii_lowercase().contains("connection: keep-alive"));
        let len: usize = text
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length: ")
                    .map(String::from)
            })
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; len];
        s.read_exact(&mut body).unwrap();
        assert_eq!(body, b"ok\n");
    }

    stop(&handle, join);
}

#[test]
fn full_queue_answers_503_busy() {
    let (snapshot, _) = mined();
    let cfg = ServerConfig {
        workers: 1,
        queue: 1,
        read_timeout: Duration::from_secs(3),
        ..ServerConfig::default()
    };
    let (addr, handle, join) = start(snapshot, cfg);

    // Three idle connections against one worker and a queue of one: the
    // first two occupy the worker and the queue slot (in some order,
    // depending on scheduling), and exactly one connection is rejected
    // with an immediate 503. The occupying connections idle until the
    // server's read timeout answers them 408.
    let holds: Vec<TcpStream> = (0..3).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let mut statuses = Vec::new();
    for s in &holds {
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    }
    for mut s in holds {
        let mut raw = Vec::new();
        let _ = s.read_to_end(&mut raw);
        let text = String::from_utf8_lossy(&raw).into_owned();
        statuses.push(
            text.split_whitespace()
                .nth(1)
                .and_then(|t| t.parse::<u16>().ok()),
        );
    }
    // Scheduling decides whether the worker dequeues before the later
    // connections arrive, so one or two rejections are both legitimate —
    // but every connection gets answered, and at least one hits the
    // 503 backpressure path.
    let rejected_count = statuses.iter().filter(|s| **s == Some(503)).count();
    let timed_out = statuses.iter().filter(|s| **s == Some(408)).count();
    assert!(
        (1..=2).contains(&rejected_count),
        "some connection should hit backpressure: {statuses:?}"
    );
    assert_eq!(
        rejected_count + timed_out,
        3,
        "every connection gets a definite answer: {statuses:?}"
    );

    // Once the holds resolve, the server answers normally again and the
    // rejection is visible in /metrics.
    let (status, metrics) = request(addr, "GET", "/metrics", None, &[]);
    assert_eq!(status, 200);
    let rejected = metrics
        .lines()
        .find_map(|l| l.strip_prefix("trajserve_rejected_busy_total "))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap();
    assert_eq!(rejected, rejected_count as u64);

    stop(&handle, join);
}

#[test]
fn silent_connection_times_out_with_408() {
    let (snapshot, _) = mined();
    let cfg = ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let (addr, handle, join) = start(snapshot, cfg);

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Half a request line, then silence.
    s.write_all(b"GET /hea").unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 408"), "got: {text}");

    stop(&handle, join);
}

#[test]
fn watch_hot_reloads_rewritten_snapshot() {
    let (snapshot, _) = mined();
    let full_k = snapshot.patterns.len();
    assert!(full_k >= 2, "need at least 2 patterns to observe a reload");

    let dir = std::env::temp_dir().join(format!("trajserve-watch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snap.json");
    std::fs::write(&path, snapshot.to_json_pretty()).unwrap();

    let cfg = ServerConfig {
        watch: true,
        watch_interval: Duration::from_millis(50),
        snapshot_path: Some(path.clone()),
        ..ServerConfig::default()
    };
    let loaded = Snapshot::load(&path).unwrap();
    let (addr, handle, join) = start(loaded, cfg);

    let (status, body) = request(addr, "GET", "/topk", None, &[]);
    assert_eq!(status, 200);
    let before: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(before["patterns"].as_array().unwrap().len(), full_k);

    // Rewrite the snapshot with a truncated top-k; the watcher must pick
    // it up without dropping a single request.
    let mut smaller = snapshot.clone();
    smaller.patterns.truncate(1);
    smaller.groups.clear();
    std::fs::write(&path, smaller.to_json_pretty()).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    let reloaded = loop {
        let (status, body) = request(addr, "GET", "/topk", None, &[]);
        assert_eq!(status, 200, "server must keep serving during reload");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        if v["patterns"].as_array().unwrap().len() == 1 {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
        thread::sleep(Duration::from_millis(50));
    };
    assert!(reloaded, "snapshot rewrite was never picked up");

    let (_, metrics) = request(addr, "GET", "/metrics", None, &[]);
    let reloads = metrics
        .lines()
        .find_map(|l| l.strip_prefix("trajserve_snapshot_reloads_total "))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap();
    assert!(reloads >= 1);

    stop(&handle, join);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serves_a_stream_checkpoint_directly() {
    use trajdata::Trajectory;
    use trajgeo::{BBox, Point2};
    use trajstream::StreamMiner;

    let grid = Grid::new(BBox::unit(), 6, 6).unwrap();
    let params = MiningParams::new(4, 0.08)
        .unwrap()
        .with_min_len(2)
        .unwrap()
        .with_max_len(3)
        .unwrap();
    let mut miner = StreamMiner::new(grid, params).unwrap();
    for j in 0..8 {
        miner.slide(
            Trajectory::from_exact(
                (0..5).map(move |i| Point2::new(0.1 + i as f64 * 0.18, 0.2 + j as f64 * 0.07)),
            ),
            6,
        );
    }
    let dir = std::env::temp_dir().join(format!("trajserve-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("stream.ckpt");
    miner.checkpoint(&ckpt).unwrap();

    let snapshot = Snapshot::load(&ckpt).unwrap();
    let expected = miner.topk().len();
    let (addr, handle, join) = start(snapshot, ServerConfig::default());
    let (status, body) = request(addr, "GET", "/topk", None, &[]);
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(v["patterns"].as_array().unwrap().len(), expected);
    assert!(
        v.get("stream").is_some(),
        "stream block must survive: {body}"
    );

    stop(&handle, join);
    std::fs::remove_dir_all(&dir).ok();
}
