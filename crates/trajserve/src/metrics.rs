//! Lock-free server counters rendered as plain-text gauges on
//! `GET /metrics`. All counters are relaxed atomics — metrics reads
//! never contend with request handling.

use std::sync::atomic::{AtomicU64, Ordering};
use trajpattern::stats::prometheus_counters;

/// Routes tracked individually (everything else lands in `other`).
pub const ENDPOINTS: [&str; 11] = [
    "topk",
    "score",
    "match",
    "predict",
    "healthz",
    "metrics",
    "v1_topk",
    "v1_score",
    "v1_match",
    "v1_predict",
    "other",
];

/// [`ENDPOINTS`] slot of `/v1/score` — the route with its own dedicated
/// latency histogram (the fast-path acceptance metric).
pub const V1_SCORE_ENDPOINT: usize = 7;

/// Upper edges (seconds) of the latency histogram buckets; a final
/// `+Inf` bucket is implicit.
pub const LATENCY_BUCKETS: [f64; 8] = [0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0];

/// The server's counter set. One instance per [`Server`](crate::Server),
/// shared across workers.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests dispatched, per endpoint (indexed like [`ENDPOINTS`]).
    pub requests: [AtomicU64; 11],
    /// Responses by status class: 2xx, 4xx, 5xx.
    pub responses_2xx: AtomicU64,
    /// 4xx responses.
    pub responses_4xx: AtomicU64,
    /// 5xx responses.
    pub responses_5xx: AtomicU64,
    /// Per-bucket observation counts (non-cumulative; rendered
    /// cumulative). Index 8 is the `+Inf` bucket.
    pub latency_buckets: [AtomicU64; 9],
    /// Sum of observed request latencies in microseconds.
    pub latency_sum_us: AtomicU64,
    /// Number of latency observations.
    pub latency_count: AtomicU64,
    /// Per-bucket observation counts for `/v1/score` alone — the
    /// fast-path acceptance metric, rendered as
    /// `trajserve_v1_score_seconds_bucket` so CI can read its p50
    /// straight off `/metrics`. Index 8 is the `+Inf` bucket.
    pub v1_score_buckets: [AtomicU64; 9],
    /// Sum of `/v1/score` latencies in microseconds.
    pub v1_score_sum_us: AtomicU64,
    /// Number of `/v1/score` observations.
    pub v1_score_count: AtomicU64,
    /// Connections currently queued for a worker.
    pub queue_depth: AtomicU64,
    /// Requests currently being handled.
    pub inflight: AtomicU64,
    /// Connections rejected with 503 because the queue was full.
    pub rejected_busy: AtomicU64,
    /// Request handlers that panicked (each answered with a 500).
    pub panics: AtomicU64,
    /// Successful snapshot hot-reloads.
    pub reloads: AtomicU64,
    /// Failed snapshot hot-reload attempts.
    pub reload_failures: AtomicU64,
    /// Pattern scorings performed by request-serving scorers.
    pub scorings: AtomicU64,
    /// Trajectories scored via `/score` and `/match`.
    pub scored_trajectories: AtomicU64,
    /// Scorer shards that panicked and were rescored sequentially.
    pub scorer_degraded: AtomicU64,
}

/// Maps a request path to its [`ENDPOINTS`] slot.
pub fn endpoint_index(path: &str) -> usize {
    match path {
        "/topk" => 0,
        "/score" => 1,
        "/match" => 2,
        "/predict" => 3,
        "/healthz" => 4,
        "/metrics" => 5,
        "/v1/topk" => 6,
        "/v1/score" => 7,
        "/v1/match" => 8,
        "/v1/predict" => 9,
        _ => 10,
    }
}

impl Metrics {
    /// Records a finished request: endpoint, status class, and latency.
    pub fn observe(&self, endpoint: usize, status: u16, seconds: f64) {
        self.requests[endpoint].fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        let bucket = LATENCY_BUCKETS
            .iter()
            .position(|&edge| seconds <= edge)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us
            .fetch_add((seconds * 1e6) as u64, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        if endpoint == V1_SCORE_ENDPOINT {
            self.v1_score_buckets[bucket].fetch_add(1, Ordering::Relaxed);
            self.v1_score_sum_us
                .fetch_add((seconds * 1e6) as u64, Ordering::Relaxed);
            self.v1_score_count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Renders the counter set plus snapshot gauges as plain text, one
    /// `name{labels} value` line each (prometheus exposition style).
    pub fn render(&self, snapshot: &crate::snapshot::Snapshot) -> String {
        let mut out = String::with_capacity(2048);
        let mut line = |name: &str, labels: &str, value: u64| {
            if labels.is_empty() {
                out.push_str(&format!("{name} {value}\n"));
            } else {
                out.push_str(&format!("{name}{{{labels}}} {value}\n"));
            }
        };
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);

        for (i, name) in ENDPOINTS.iter().enumerate() {
            line(
                "trajserve_requests_total",
                &format!("endpoint=\"{name}\""),
                get(&self.requests[i]),
            );
        }
        line(
            "trajserve_responses_total",
            "class=\"2xx\"",
            get(&self.responses_2xx),
        );
        line(
            "trajserve_responses_total",
            "class=\"4xx\"",
            get(&self.responses_4xx),
        );
        line(
            "trajserve_responses_total",
            "class=\"5xx\"",
            get(&self.responses_5xx),
        );

        let mut cumulative = 0;
        for (i, edge) in LATENCY_BUCKETS.iter().enumerate() {
            cumulative += get(&self.latency_buckets[i]);
            line(
                "trajserve_request_seconds_bucket",
                &format!("le=\"{edge}\""),
                cumulative,
            );
        }
        cumulative += get(&self.latency_buckets[LATENCY_BUCKETS.len()]);
        line(
            "trajserve_request_seconds_bucket",
            "le=\"+Inf\"",
            cumulative,
        );
        line(
            "trajserve_request_seconds_sum_us",
            "",
            get(&self.latency_sum_us),
        );
        line(
            "trajserve_request_seconds_count",
            "",
            get(&self.latency_count),
        );

        let mut cumulative = 0;
        for (i, edge) in LATENCY_BUCKETS.iter().enumerate() {
            cumulative += get(&self.v1_score_buckets[i]);
            line(
                "trajserve_v1_score_seconds_bucket",
                &format!("le=\"{edge}\""),
                cumulative,
            );
        }
        cumulative += get(&self.v1_score_buckets[LATENCY_BUCKETS.len()]);
        line(
            "trajserve_v1_score_seconds_bucket",
            "le=\"+Inf\"",
            cumulative,
        );
        line(
            "trajserve_v1_score_seconds_sum_us",
            "",
            get(&self.v1_score_sum_us),
        );
        line(
            "trajserve_v1_score_seconds_count",
            "",
            get(&self.v1_score_count),
        );

        line("trajserve_queue_depth", "", get(&self.queue_depth));
        line("trajserve_inflight_requests", "", get(&self.inflight));
        line(
            "trajserve_rejected_busy_total",
            "",
            get(&self.rejected_busy),
        );
        line("trajserve_request_panics_total", "", get(&self.panics));
        line("trajserve_snapshot_reloads_total", "", get(&self.reloads));
        line(
            "trajserve_snapshot_reload_failures_total",
            "",
            get(&self.reload_failures),
        );

        line("trajserve_scorings_total", "", get(&self.scorings));
        line(
            "trajserve_scored_trajectories_total",
            "",
            get(&self.scored_trajectories),
        );
        line(
            "trajserve_scorer_degraded_rescores_total",
            "",
            get(&self.scorer_degraded),
        );

        // Gauges describing the snapshot currently being served.
        line(
            "trajserve_snapshot_patterns",
            "",
            snapshot.patterns.len() as u64,
        );
        line(
            "trajserve_snapshot_groups",
            "",
            snapshot.groups.len() as u64,
        );
        line(
            "trajserve_snapshot_is_stream",
            "",
            u64::from(snapshot.stream.is_some()),
        );
        // Counter blocks of the snapshot's producing run, rendered
        // through the one shared stats rendering — gauge names derive
        // from the same field lists as the JSON schema and the
        // checkpoint formats.
        prometheus_counters(
            &mut out,
            "trajserve_snapshot_mining",
            &snapshot.stats.counters(),
        );
        prometheus_counters(
            &mut out,
            "trajserve_snapshot_scorer",
            &snapshot.scorer.counters(),
        );
        if let Some(stream) = &snapshot.stream {
            prometheus_counters(&mut out, "trajserve_snapshot_stream", &stream.counters());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_render_cumulatively() {
        let m = Metrics::default();
        m.observe(0, 200, 0.0001); // bucket 0
        m.observe(1, 200, 0.002); // bucket 2
        m.observe(1, 404, 2.0); // +Inf
        assert_eq!(m.responses_2xx.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_4xx.load(Ordering::Relaxed), 1);
        let total: u64 = m
            .latency_buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        assert_eq!(total, 3);
        assert_eq!(m.latency_buckets[0].load(Ordering::Relaxed), 1);
        assert_eq!(m.latency_buckets[8].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn endpoint_index_covers_routes() {
        assert_eq!(endpoint_index("/topk"), 0);
        assert_eq!(endpoint_index("/metrics"), 5);
        assert_eq!(endpoint_index("/nope"), ENDPOINTS.len() - 1);
        assert_eq!(ENDPOINTS[endpoint_index("/score")], "score");
        assert_eq!(ENDPOINTS[endpoint_index("/v1/topk")], "v1_topk");
        assert_eq!(ENDPOINTS[endpoint_index("/v1/score")], "v1_score");
        assert_eq!(ENDPOINTS[endpoint_index("/v1/match")], "v1_match");
        assert_eq!(ENDPOINTS[endpoint_index("/v1/predict")], "v1_predict");
        assert_eq!(endpoint_index("/v1/score"), V1_SCORE_ENDPOINT);
    }

    #[test]
    fn v1_score_histogram_tracks_only_its_route() {
        let m = Metrics::default();
        m.observe(V1_SCORE_ENDPOINT, 200, 0.0001);
        m.observe(1, 200, 0.0001); // legacy /score: main histogram only
        assert_eq!(m.v1_score_count.load(Ordering::Relaxed), 1);
        assert_eq!(m.latency_count.load(Ordering::Relaxed), 2);
        assert_eq!(m.v1_score_buckets[0].load(Ordering::Relaxed), 1);
    }
}
