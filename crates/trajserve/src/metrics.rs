//! Lock-free server counters rendered as plain-text gauges on
//! `GET /metrics`. All counters are relaxed atomics — metrics reads
//! never contend with request handling.
//!
//! Latency is tracked as one [`Histogram`] **per route** (indexed like
//! [`ENDPOINTS`]), rendered three ways from the same counters:
//!
//! * `trajserve_route_seconds_*{route="..."}` — the per-route split;
//! * `trajserve_request_seconds_*` — the all-routes aggregate (the sum
//!   of the per-route histograms, kept for existing dashboards);
//! * `trajserve_v1_score_seconds_*` — the `/v1/score` histogram under
//!   its historical name (CI reads its p50 straight off `/metrics`).

use std::sync::atomic::{AtomicU64, Ordering};
use trajpattern::stats::prometheus_counters;

/// Routes tracked individually (everything else lands in `other`).
pub const ENDPOINTS: [&str; 15] = [
    "topk",
    "score",
    "match",
    "predict",
    "healthz",
    "metrics",
    "v1_topk",
    "v1_score",
    "v1_match",
    "v1_predict",
    "v1_shards",
    "v1_prange",
    "v1_pnn",
    "v1_matchlive",
    "other",
];

/// [`ENDPOINTS`] slot of `/v1/score` — the route whose histogram is
/// additionally rendered under its historical dedicated name (the
/// fast-path acceptance metric).
pub const V1_SCORE_ENDPOINT: usize = 7;

/// Upper edges (seconds) of the latency histogram buckets; a final
/// `+Inf` bucket is implicit.
pub const LATENCY_BUCKETS: [f64; 8] = [0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0];

/// One latency histogram over [`LATENCY_BUCKETS`]: per-bucket counts
/// (index 8 is the `+Inf` bucket, stored non-cumulative and rendered
/// cumulative), the latency sum in microseconds, and the observation
/// count.
#[derive(Debug, Default)]
pub struct Histogram {
    /// Per-bucket observation counts.
    pub buckets: [AtomicU64; 9],
    /// Sum of observed latencies in microseconds.
    pub sum_us: AtomicU64,
    /// Number of observations.
    pub count: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, seconds: f64) {
        let bucket = LATENCY_BUCKETS
            .iter()
            .position(|&edge| seconds <= edge)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_us
            .fetch_add((seconds * 1e6) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Renders `{name}_bucket` (cumulative), `{name}_sum_us`, and
    /// `{name}_count` lines, with `labels` (e.g. `route="topk"`)
    /// prepended to each line's label set.
    fn render(&self, out: &mut String, name: &str, labels: &str) {
        use std::fmt::Write;
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0;
        for (i, edge) in LATENCY_BUCKETS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{edge}\"}} {cumulative}"
            )
            .expect("writing to a String cannot fail");
        }
        cumulative += self.buckets[LATENCY_BUCKETS.len()].load(Ordering::Relaxed);
        writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}"
        )
        .expect("writing to a String cannot fail");
        let tail = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        writeln!(
            out,
            "{name}_sum_us{tail} {}",
            self.sum_us.load(Ordering::Relaxed)
        )
        .expect("writing to a String cannot fail");
        writeln!(
            out,
            "{name}_count{tail} {}",
            self.count.load(Ordering::Relaxed)
        )
        .expect("writing to a String cannot fail");
    }
}

/// The server's counter set. One instance per [`Server`](crate::Server),
/// shared across workers.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests dispatched, per endpoint (indexed like [`ENDPOINTS`]).
    pub requests: [AtomicU64; 15],
    /// Responses by status class: 2xx, 4xx, 5xx.
    pub responses_2xx: AtomicU64,
    /// 4xx responses.
    pub responses_4xx: AtomicU64,
    /// 5xx responses.
    pub responses_5xx: AtomicU64,
    /// Per-route latency histograms (indexed like [`ENDPOINTS`]); the
    /// all-routes aggregate is their sum, computed at render time.
    pub route_seconds: [Histogram; 15],
    /// Connections currently queued for a worker.
    pub queue_depth: AtomicU64,
    /// Requests currently being handled.
    pub inflight: AtomicU64,
    /// Connections rejected with 503 because the queue was full.
    pub rejected_busy: AtomicU64,
    /// Request handlers that panicked (each answered with a 500).
    pub panics: AtomicU64,
    /// Successful snapshot hot-reloads and live per-shard swaps.
    pub reloads: AtomicU64,
    /// Failed snapshot hot-reload attempts.
    pub reload_failures: AtomicU64,
    /// Pattern scorings performed by request-serving scorers.
    pub scorings: AtomicU64,
    /// Trajectories scored via `/score` and `/match`.
    pub scored_trajectories: AtomicU64,
    /// Scorer shards that panicked and were rescored sequentially.
    pub scorer_degraded: AtomicU64,
}

/// Maps a request path to its [`ENDPOINTS`] slot.
pub fn endpoint_index(path: &str) -> usize {
    match path {
        "/topk" => 0,
        "/score" => 1,
        "/match" => 2,
        "/predict" => 3,
        "/healthz" => 4,
        "/metrics" => 5,
        "/v1/topk" => 6,
        "/v1/score" => 7,
        "/v1/match" => 8,
        "/v1/predict" => 9,
        "/v1/shards" => 10,
        "/v1/prange" => 11,
        "/v1/pnn" => 12,
        "/v1/matchlive" => 13,
        _ => 14,
    }
}

impl Metrics {
    /// Records a finished request: endpoint, status class, and latency.
    pub fn observe(&self, endpoint: usize, status: u16, seconds: f64) {
        self.requests[endpoint].fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        self.route_seconds[endpoint].observe(seconds);
    }

    /// Renders the counter set plus snapshot gauges as plain text, one
    /// `name{labels} value` line each (prometheus exposition style).
    pub fn render(&self, snapshot: &crate::snapshot::Snapshot) -> String {
        let mut out = String::with_capacity(4096);
        fn line(out: &mut String, name: &str, labels: &str, value: u64) {
            if labels.is_empty() {
                out.push_str(&format!("{name} {value}\n"));
            } else {
                out.push_str(&format!("{name}{{{labels}}} {value}\n"));
            }
        }
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);

        for (i, name) in ENDPOINTS.iter().enumerate() {
            line(
                &mut out,
                "trajserve_requests_total",
                &format!("endpoint=\"{name}\""),
                get(&self.requests[i]),
            );
        }
        line(
            &mut out,
            "trajserve_responses_total",
            "class=\"2xx\"",
            get(&self.responses_2xx),
        );
        line(
            &mut out,
            "trajserve_responses_total",
            "class=\"4xx\"",
            get(&self.responses_4xx),
        );
        line(
            &mut out,
            "trajserve_responses_total",
            "class=\"5xx\"",
            get(&self.responses_5xx),
        );

        // All-routes aggregate: the bucket-wise sum of the per-route
        // histograms, under the original unlabeled names.
        let aggregate = Histogram::default();
        for h in &self.route_seconds {
            for (i, b) in h.buckets.iter().enumerate() {
                aggregate.buckets[i].fetch_add(get(b), Ordering::Relaxed);
            }
            aggregate
                .sum_us
                .fetch_add(get(&h.sum_us), Ordering::Relaxed);
            aggregate.count.fetch_add(get(&h.count), Ordering::Relaxed);
        }
        aggregate.render(&mut out, "trajserve_request_seconds", "");

        // Per-route split; untouched routes are skipped to keep the
        // exposition compact.
        for (i, name) in ENDPOINTS.iter().enumerate() {
            if self.route_seconds[i].count() > 0 {
                self.route_seconds[i].render(
                    &mut out,
                    "trajserve_route_seconds",
                    &format!("route=\"{name}\""),
                );
            }
        }

        // `/v1/score` under its historical dedicated name — the
        // fast-path acceptance metric CI reads the p50 from. Always
        // rendered, even before the first observation.
        self.route_seconds[V1_SCORE_ENDPOINT].render(&mut out, "trajserve_v1_score_seconds", "");

        line(
            &mut out,
            "trajserve_queue_depth",
            "",
            get(&self.queue_depth),
        );
        line(
            &mut out,
            "trajserve_inflight_requests",
            "",
            get(&self.inflight),
        );
        line(
            &mut out,
            "trajserve_rejected_busy_total",
            "",
            get(&self.rejected_busy),
        );
        line(
            &mut out,
            "trajserve_request_panics_total",
            "",
            get(&self.panics),
        );
        line(
            &mut out,
            "trajserve_snapshot_reloads_total",
            "",
            get(&self.reloads),
        );
        line(
            &mut out,
            "trajserve_snapshot_reload_failures_total",
            "",
            get(&self.reload_failures),
        );

        line(
            &mut out,
            "trajserve_scorings_total",
            "",
            get(&self.scorings),
        );
        line(
            &mut out,
            "trajserve_scored_trajectories_total",
            "",
            get(&self.scored_trajectories),
        );
        line(
            &mut out,
            "trajserve_scorer_degraded_rescores_total",
            "",
            get(&self.scorer_degraded),
        );

        // Gauges describing the snapshot currently being served.
        line(
            &mut out,
            "trajserve_snapshot_patterns",
            "",
            snapshot.patterns.len() as u64,
        );
        line(
            &mut out,
            "trajserve_snapshot_groups",
            "",
            snapshot.groups.len() as u64,
        );
        line(
            &mut out,
            "trajserve_snapshot_is_stream",
            "",
            u64::from(snapshot.stream.is_some()),
        );
        // Counter blocks of the snapshot's producing run, rendered
        // through the one shared stats rendering — gauge names derive
        // from the same field lists as the JSON schema and the
        // checkpoint formats.
        prometheus_counters(
            &mut out,
            "trajserve_snapshot_mining",
            &snapshot.stats.counters(),
        );
        prometheus_counters(
            &mut out,
            "trajserve_snapshot_scorer",
            &snapshot.scorer.counters(),
        );
        if let Some(stream) = &snapshot.stream {
            prometheus_counters(&mut out, "trajserve_snapshot_stream", &stream.counters());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_record_per_route() {
        let m = Metrics::default();
        m.observe(0, 200, 0.0001); // bucket 0
        m.observe(1, 200, 0.002); // bucket 2
        m.observe(1, 404, 2.0); // +Inf
        assert_eq!(m.responses_2xx.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_4xx.load(Ordering::Relaxed), 1);
        assert_eq!(m.route_seconds[0].count(), 1);
        assert_eq!(m.route_seconds[1].count(), 2);
        assert_eq!(m.route_seconds[0].buckets[0].load(Ordering::Relaxed), 1);
        assert_eq!(m.route_seconds[1].buckets[8].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn endpoint_index_covers_routes() {
        assert_eq!(endpoint_index("/topk"), 0);
        assert_eq!(endpoint_index("/metrics"), 5);
        assert_eq!(endpoint_index("/nope"), ENDPOINTS.len() - 1);
        assert_eq!(ENDPOINTS[endpoint_index("/score")], "score");
        assert_eq!(ENDPOINTS[endpoint_index("/v1/topk")], "v1_topk");
        assert_eq!(ENDPOINTS[endpoint_index("/v1/score")], "v1_score");
        assert_eq!(ENDPOINTS[endpoint_index("/v1/match")], "v1_match");
        assert_eq!(ENDPOINTS[endpoint_index("/v1/predict")], "v1_predict");
        assert_eq!(ENDPOINTS[endpoint_index("/v1/shards")], "v1_shards");
        assert_eq!(ENDPOINTS[endpoint_index("/v1/prange")], "v1_prange");
        assert_eq!(ENDPOINTS[endpoint_index("/v1/pnn")], "v1_pnn");
        assert_eq!(ENDPOINTS[endpoint_index("/v1/matchlive")], "v1_matchlive");
        assert_eq!(endpoint_index("/v1/score"), V1_SCORE_ENDPOINT);
    }

    #[test]
    fn v1_score_histogram_tracks_only_its_route() {
        let m = Metrics::default();
        m.observe(V1_SCORE_ENDPOINT, 200, 0.0001);
        m.observe(1, 200, 0.0001); // legacy /score: its own histogram
        assert_eq!(m.route_seconds[V1_SCORE_ENDPOINT].count(), 1);
        assert_eq!(m.route_seconds[1].count(), 1);
        assert_eq!(
            m.route_seconds[V1_SCORE_ENDPOINT].buckets[0].load(Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn render_keeps_historical_names_and_adds_route_split() {
        let m = Metrics::default();
        m.observe(endpoint_index("/v1/topk"), 200, 0.0001);
        m.observe(V1_SCORE_ENDPOINT, 200, 0.002);
        let snapshot = crate::snapshot::Snapshot {
            params: trajpattern::MiningParams::new(3, 0.1).unwrap(),
            grid: trajgeo::Grid::new(trajgeo::BBox::unit(), 4, 4).unwrap(),
            patterns: Vec::new(),
            groups: Vec::new(),
            stats: Default::default(),
            scorer: Default::default(),
            stream: None,
            next_seq: None,
        };
        let text = m.render(&snapshot);
        // Aggregate histogram counts both observations.
        assert!(text.contains("trajserve_request_seconds_count 2"), "{text}");
        // Per-route split is labeled; untouched routes are absent.
        assert!(
            text.contains("trajserve_route_seconds_count{route=\"v1_topk\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("trajserve_route_seconds_count{route=\"v1_score\"} 1"),
            "{text}"
        );
        assert!(!text.contains("route=\"predict\""), "{text}");
        // `/v1/score` keeps its historical dedicated histogram name.
        assert!(
            text.contains("trajserve_v1_score_seconds_count 1"),
            "{text}"
        );
        assert!(
            text.contains("trajserve_v1_score_seconds_bucket{le=\"0.005\"} 1"),
            "{text}"
        );
    }
}
