//! A deliberately small HTTP/1.1 implementation over [`std::net`] —
//! just enough protocol for the query routes: request-line + headers +
//! `Content-Length` bodies in, fixed-length responses out, keep-alive
//! by HTTP/1.1 default. No chunked encoding, no TLS, no dependencies.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request line plus headers, defending the parser
/// against unbounded garbage before a request is even admitted.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method token, e.g. `GET`.
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Raw query string after `?`, empty when absent.
    pub query: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First header value with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Value of the first `name` query parameter (`?shard=west&k=5`).
    /// No percent-decoding: every parameter the routes accept (shard
    /// names, `*`) is plain `[A-Za-z0-9_*-]`, and an encoded value
    /// simply fails the later lookup with a clean 404/400.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }
}

/// Why a request could not be read off the wire.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection before sending a request line —
    /// the normal end of a keep-alive session.
    Closed,
    /// The read timed out mid-request.
    Timeout,
    /// The bytes were not a parseable HTTP/1.1 request.
    Malformed(String),
    /// The declared body exceeds the server's limit.
    TooLarge {
        /// The limit that was exceeded, in bytes.
        limit: usize,
    },
    /// Any other transport failure.
    Io(std::io::Error),
}

fn map_io(e: std::io::Error) -> RequestError {
    match e.kind() {
        // Both surface for expired socket timeouts depending on platform.
        ErrorKind::WouldBlock | ErrorKind::TimedOut => RequestError::Timeout,
        _ => RequestError::Io(e),
    }
}

fn read_line(
    reader: &mut BufReader<TcpStream>,
    budget: &mut usize,
) -> Result<Option<String>, RequestError> {
    let mut raw = Vec::new();
    let mut take = reader.take(*budget as u64 + 1);
    let n = take.read_until(b'\n', &mut raw).map_err(map_io)?;
    if n == 0 {
        return Ok(None);
    }
    if n > *budget {
        return Err(RequestError::Malformed(format!(
            "request head exceeds {MAX_HEAD_BYTES} bytes"
        )));
    }
    *budget -= n;
    while matches!(raw.last(), Some(b'\n') | Some(b'\r')) {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| RequestError::Malformed("request head is not UTF-8".into()))
}

/// Reads one request from an established connection. `max_body` bounds
/// the accepted `Content-Length`.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Request, RequestError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = match read_line(reader, &mut budget)? {
        None => return Err(RequestError::Closed),
        Some(l) if l.is_empty() => {
            // Tolerate a stray CRLF between pipelined requests.
            match read_line(reader, &mut budget)? {
                None => return Err(RequestError::Closed),
                Some(l2) if l2.is_empty() => {
                    return Err(RequestError::Malformed("empty request line".into()))
                }
                Some(l2) => l2,
            }
        }
        Some(l) => l,
    };
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_string(), t.to_string(), v.to_string()),
        _ => {
            return Err(RequestError::Malformed(format!(
                "bad request line '{request_line}'"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported protocol '{version}'"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut budget)? {
            None => return Err(RequestError::Malformed("connection closed mid-head".into())),
            Some(l) => l,
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("bad header line '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| RequestError::Malformed(format!("bad Content-Length '{v}'")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(RequestError::TooLarge { limit: max_body });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(map_io)?;

    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 defaults to close.
    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
        keep_alive,
    })
}

/// A response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from already-rendered text.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// A structured JSON error envelope matching the `/v1` schema:
    /// `{"error":{"code":<code>,"message":<message>}}`, with the code
    /// derived from the status ([`error_code`]).
    pub fn error(status: u16, message: &str) -> Response {
        let detail = serde_json::json!({
            "code": error_code(status),
            "message": message,
        });
        let body =
            serde_json::to_string(&serde_json::json!({ "error": detail })).unwrap_or_else(|_| {
                String::from("{\"error\":{\"code\":\"internal\",\"message\":\"error\"}}")
            });
        Response::json(status, body)
    }
}

/// The stable machine-readable code for an error status — what `/v1`
/// clients switch on instead of parsing messages.
pub fn error_code(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        408 => "timeout",
        413 => "payload_too_large",
        503 => "busy",
        _ => "internal",
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a response. `keep_alive` controls the `Connection` header —
/// the caller decides based on the request and shutdown state.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}
