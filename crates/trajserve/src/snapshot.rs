//! The versioned pattern-snapshot schema — the one JSON shape shared by
//! `trajmine mine --json`, `trajmine stream --json`, and the server's
//! snapshot loader, so the CLI writer and the server parser cannot drift.
//!
//! ```text
//! {
//!   "schema":   "trajmine-snapshot/v1",
//!   "params":   { ...MiningParams... },      // incl. delta and min_prob
//!   "grid":     { ...Grid... },              // bbox + nx/ny
//!   "patterns": [ {"pattern": {"cells": [..]}, "nm": f64}, .. ],
//!   "groups":   [ {"patterns": [..]}, .. ],
//!   "stats":    { ...MiningStats... },
//!   "scorer":   { ...ScorerStats... },
//!   "stream":   { ...StreamStats... },       // stream snapshots only
//!   "next_seq": n                            // stream snapshots only
//! }
//! ```
//!
//! Floats are written with shortest-round-trip formatting and parsed
//! correctly rounded, so `delta`, `min_prob`, the grid bounds, and every
//! NM survive the trip bit-exactly — the server's `/score` can therefore
//! reproduce the library scorer's results on the loaded snapshot down to
//! the last bit. [`Snapshot::load`] also accepts a `trajstream`
//! checkpoint (`trajpattern-checkpoint v2`), sniffed by its first line,
//! so `trajmine stream --checkpoint` output can be served directly.

use serde_json::Value;
use std::fmt;
use std::path::{Path, PathBuf};
use trajgeo::Grid;
use trajpattern::{
    MinedPattern, MiningOutcome, MiningParams, MiningStats, PatternGroup, ScorerStats,
};
use trajstream::{StreamMiner, StreamStats};

/// The schema identifier this module writes and the only one it accepts.
pub const SCHEMA: &str = "trajmine-snapshot/v1";

/// A complete, self-describing pattern snapshot: everything the server
/// needs to answer queries bit-identically to the run that produced it.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Mining parameters of the producing run (δ and `min_prob` drive
    /// scoring; `gamma` drives grouping; `k` bounds the top-k).
    pub params: MiningParams,
    /// The grid patterns are defined over.
    pub grid: Grid,
    /// The top-k patterns, best NM first.
    pub patterns: Vec<MinedPattern>,
    /// Pattern groups over `patterns` (empty when `gamma` was unset).
    pub groups: Vec<PatternGroup>,
    /// Mining counters of the producing run.
    pub stats: MiningStats,
    /// Scorer engine counters of the producing run.
    pub scorer: ScorerStats,
    /// Stream counters — present only for `trajmine stream` snapshots.
    pub stream: Option<StreamStats>,
    /// Next stream sequence number — present only for stream snapshots.
    pub next_seq: Option<u64>,
}

/// Why a snapshot could not be read.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The file could not be read.
    Io {
        /// The path that failed.
        path: PathBuf,
        /// The OS error message.
        message: String,
    },
    /// The text is not valid JSON.
    Json(serde_json::Error),
    /// The JSON does not declare the supported schema.
    Schema {
        /// The `schema` value found (empty when absent).
        found: String,
    },
    /// Structurally valid JSON describing an invalid snapshot.
    Invalid(String),
    /// A `trajstream` checkpoint that failed to decode.
    Checkpoint(trajpattern::CheckpointError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, message } => {
                write!(f, "cannot read snapshot {}: {message}", path.display())
            }
            SnapshotError::Json(_) => write!(f, "snapshot is not valid JSON"),
            SnapshotError::Schema { found } if found.is_empty() => {
                write!(f, "snapshot declares no schema (expected '{SCHEMA}')")
            }
            SnapshotError::Schema { found } => {
                write!(
                    f,
                    "unsupported snapshot schema '{found}' (expected '{SCHEMA}')"
                )
            }
            SnapshotError::Invalid(msg) => write!(f, "invalid snapshot: {msg}"),
            SnapshotError::Checkpoint(_) => write!(f, "invalid stream checkpoint"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Json(e) => Some(e),
            SnapshotError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<trajpattern::CheckpointError> for SnapshotError {
    fn from(e: trajpattern::CheckpointError) -> SnapshotError {
        SnapshotError::Checkpoint(e)
    }
}

impl Snapshot {
    /// Wraps a finished batch-mining outcome as a snapshot.
    pub fn from_outcome(out: &MiningOutcome, grid: &Grid, params: &MiningParams) -> Snapshot {
        Snapshot {
            params: params.clone(),
            grid: grid.clone(),
            patterns: out.patterns.clone(),
            groups: out.groups.clone(),
            stats: out.stats.clone(),
            scorer: out.scorer,
            stream: None,
            next_seq: None,
        }
    }

    /// Snapshots the current state of a stream miner (top-k + stream
    /// counters).
    pub fn from_stream(miner: &StreamMiner) -> Snapshot {
        Snapshot {
            params: miner.params().clone(),
            grid: miner.grid().clone(),
            patterns: miner.topk().to_vec(),
            groups: miner.groups().to_vec(),
            stats: miner.last_mining_stats().clone(),
            scorer: miner.last_scorer_stats(),
            stream: Some(miner.stats().clone()),
            next_seq: Some(miner.next_seq()),
        }
    }

    /// Serializes to the schema's JSON [`Value`]. Stream-only fields are
    /// omitted (not `null`) for batch snapshots.
    pub fn to_value(&self) -> Value {
        let field =
            |v: &dyn serde::Serialize| serde_json::to_value(v).expect("snapshot fields serialize");
        let mut fields: Vec<(String, Value)> = vec![
            ("schema".into(), Value::String(SCHEMA.into())),
            ("params".into(), field(&self.params)),
            ("grid".into(), field(&self.grid)),
            ("patterns".into(), field(&self.patterns)),
            ("groups".into(), field(&self.groups)),
            ("stats".into(), field(&self.stats)),
            ("scorer".into(), field(&self.scorer)),
        ];
        if let Some(s) = &self.stream {
            fields.push(("stream".into(), field(s)));
        }
        if let Some(n) = self.next_seq {
            fields.push(("next_seq".into(), field(&n)));
        }
        Value::Object(fields)
    }

    /// Serializes to pretty JSON text — what `trajmine` writes to
    /// `--json FILE`.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("snapshot serializes")
    }

    /// Parses and validates snapshot JSON (the inverse of
    /// [`Snapshot::to_value`]).
    pub fn parse(text: &str) -> Result<Snapshot, SnapshotError> {
        let v: Value = serde_json::from_str(text).map_err(SnapshotError::Json)?;
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != SCHEMA {
            return Err(SnapshotError::Schema {
                found: schema.to_string(),
            });
        }
        fn get<T: serde::Deserialize>(v: &Value, name: &str) -> Result<T, SnapshotError> {
            let field = v
                .get(name)
                .ok_or_else(|| SnapshotError::Invalid(format!("missing '{name}' field")))?;
            serde_json::from_value(field)
                .map_err(|e| SnapshotError::Invalid(format!("bad '{name}' field: {e}")))
        }
        let params: MiningParams = get(&v, "params")?;
        params
            .validate()
            .map_err(|e| SnapshotError::Invalid(format!("bad 'params' field: {e}")))?;
        // Rebuild the grid from its defining fields so the cached cell
        // sizes are guaranteed consistent (and degenerate boxes rejected)
        // even for hand-edited files. `Grid::new` recomputes the same
        // values bit-identically.
        let grid_in: Grid = get(&v, "grid")?;
        let grid = Grid::new(grid_in.bbox(), grid_in.nx(), grid_in.ny())
            .map_err(|e| SnapshotError::Invalid(format!("bad 'grid' field: {e}")))?;
        let patterns: Vec<MinedPattern> = get(&v, "patterns")?;
        for (i, m) in patterns.iter().enumerate() {
            if !m.nm.is_finite() {
                return Err(SnapshotError::Invalid(format!(
                    "pattern {i} has non-finite NM"
                )));
            }
            if m.pattern.cells().iter().any(|c| c.0 >= grid.num_cells()) {
                return Err(SnapshotError::Invalid(format!(
                    "pattern {i} references a cell outside the {}x{} grid",
                    grid.nx(),
                    grid.ny()
                )));
            }
        }
        let groups: Vec<PatternGroup> = get(&v, "groups")?;
        let stats: MiningStats = get(&v, "stats")?;
        let scorer: ScorerStats = get(&v, "scorer")?;
        let stream: Option<StreamStats> = match v.get("stream") {
            Some(s) => Some(
                serde_json::from_value(s)
                    .map_err(|e| SnapshotError::Invalid(format!("bad 'stream' field: {e}")))?,
            ),
            None => None,
        };
        let next_seq: Option<u64> = match v.get("next_seq") {
            Some(n) => Some(n.as_u64().ok_or_else(|| {
                SnapshotError::Invalid("bad 'next_seq' field: not an unsigned integer".into())
            })?),
            None => None,
        };
        Ok(Snapshot {
            params,
            grid,
            patterns,
            groups,
            stats,
            scorer,
            stream,
            next_seq,
        })
    }

    /// Loads a snapshot from disk: a `trajstream` checkpoint when the
    /// first non-blank line is the v2 checkpoint header, snapshot JSON
    /// otherwise.
    pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
        let text = std::fs::read_to_string(path).map_err(|e| SnapshotError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        Snapshot::parse_any(&text)
    }

    /// [`Snapshot::load`] on already-read text: sniffs the format and
    /// dispatches to the checkpoint or JSON parser.
    pub fn parse_any(text: &str) -> Result<Snapshot, SnapshotError> {
        let first = trajio::first_content_line(text, false).unwrap_or("");
        if first == trajstream::STREAM_VERSION_LINE {
            let miner = trajstream::parse_checkpoint(text)?;
            Ok(Snapshot::from_stream(&miner))
        } else {
            Snapshot::parse(text)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdata::{Dataset, Trajectory};
    use trajgeo::{BBox, Point2};
    use trajpattern::Miner;

    fn tiny_outcome() -> (MiningOutcome, Grid, MiningParams) {
        let data: Dataset = (0..4)
            .map(|j| {
                Trajectory::from_exact(
                    (0..4).map(move |i| Point2::new(0.125 + i as f64 * 0.25, 0.3 + j as f64 * 0.1)),
                )
            })
            .collect();
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let params = MiningParams::new(3, 0.1)
            .unwrap()
            .with_max_len(3)
            .unwrap()
            .with_gamma(0.3)
            .unwrap();
        let out = Miner::new(&data, &grid)
            .params(params.clone())
            .mine()
            .unwrap();
        (out, grid, params)
    }

    #[test]
    fn round_trips_bit_exactly() {
        let (out, grid, params) = tiny_outcome();
        let snap = Snapshot::from_outcome(&out, &grid, &params);
        let text = snap.to_json_pretty();
        let back = Snapshot::parse(&text).unwrap();
        assert_eq!(back.patterns.len(), snap.patterns.len());
        for (a, b) in back.patterns.iter().zip(&snap.patterns) {
            assert_eq!(a.pattern, b.pattern);
            assert_eq!(a.nm.to_bits(), b.nm.to_bits());
        }
        assert_eq!(back.params.delta.to_bits(), params.delta.to_bits());
        assert_eq!(back.params.min_prob.to_bits(), params.min_prob.to_bits());
        assert_eq!(
            back.grid.bbox().min().x.to_bits(),
            grid.bbox().min().x.to_bits()
        );
        assert_eq!(back.stats, snap.stats);
        assert_eq!(back.scorer, snap.scorer);
        assert!(back.stream.is_none() && back.next_seq.is_none());
    }

    #[test]
    fn stream_snapshot_carries_stream_fields() {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let params = MiningParams::new(3, 0.1).unwrap().with_max_len(3).unwrap();
        let mut m = StreamMiner::new(grid, params).unwrap();
        for j in 0..5 {
            m.slide(
                Trajectory::from_exact(
                    (0..4)
                        .map(move |i| Point2::new(0.125 + i as f64 * 0.25, 0.3 + j as f64 * 0.05)),
                ),
                3,
            );
        }
        let snap = Snapshot::from_stream(&m);
        let back = Snapshot::parse(&snap.to_json_pretty()).unwrap();
        assert_eq!(back.stream.as_ref().unwrap(), m.stats());
        assert_eq!(back.next_seq, Some(m.next_seq()));
        assert_eq!(back.patterns.len(), m.topk().len());
    }

    #[test]
    fn load_sniffs_stream_checkpoints() {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let params = MiningParams::new(3, 0.1).unwrap().with_max_len(3).unwrap();
        let mut m = StreamMiner::new(grid, params).unwrap();
        for j in 0..5 {
            m.slide(
                Trajectory::from_exact(
                    (0..4)
                        .map(move |i| Point2::new(0.125 + i as f64 * 0.25, 0.3 + j as f64 * 0.05)),
                ),
                3,
            );
        }
        let dir = std::env::temp_dir().join(format!("trajserve-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("m.ckpt");
        m.checkpoint(&ckpt).unwrap();
        let snap = Snapshot::load(&ckpt).unwrap();
        assert_eq!(snap.patterns.len(), m.topk().len());
        for (a, b) in snap.patterns.iter().zip(m.topk()) {
            assert_eq!(a.nm.to_bits(), b.nm.to_bits());
        }
        assert!(snap.stream.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_wrong_schema_and_garbage() {
        assert!(matches!(
            Snapshot::parse("{\"schema\": \"trajmine-snapshot/v999\"}"),
            Err(SnapshotError::Schema { .. })
        ));
        assert!(matches!(
            Snapshot::parse("{\"patterns\": []}"),
            Err(SnapshotError::Schema { .. })
        ));
        assert!(matches!(
            Snapshot::parse("not json"),
            Err(SnapshotError::Json(_))
        ));
        let missing = Snapshot::load(Path::new("/nonexistent/snapshot.json"));
        assert!(matches!(missing, Err(SnapshotError::Io { .. })));
    }

    #[test]
    fn rejects_out_of_grid_patterns() {
        let (out, grid, params) = tiny_outcome();
        let snap = Snapshot::from_outcome(&out, &grid, &params);
        let text = snap.to_json_pretty();
        // Shrink the grid so mined cells fall outside it.
        let smaller = text
            .replace("\"nx\": 4", "\"nx\": 1")
            .replace("\"ny\": 4", "\"ny\": 1");
        assert!(matches!(
            Snapshot::parse(&smaller),
            Err(SnapshotError::Invalid(_))
        ));
    }
}
