//! The versioned `/v1` query schema: one request shape and one response
//! envelope shared by `/v1/score`, `/v1/match`, and `/v1/predict`.
//!
//! A [`QueryRequest`] is a dataset plus optional [`QueryOptions`]:
//!
//! ```json
//! {
//!   "trajectories": [ ... ],
//!   "options": { "measure": "nm", "use_index": true, "patterns": [0, 2] }
//! }
//! ```
//!
//! Because `options` is optional, every plain dataset JSON (the body the
//! deprecated `/score`, `/match`, and `/predict` aliases accept) is also
//! a valid `/v1` body — migration is additive.
//!
//! Responses share the `trajserve-query/v1` envelope: a `schema` tag, the
//! `query` kind, and route-specific fields appended in a fixed order by
//! [`QueryResponse`]. Errors share the structured envelope rendered by
//! [`Response::error`](crate::http::Response::error).

use trajdata::{Dataset, Trajectory};
use trajpattern::Measure;

use crate::http::Response;

/// Schema tag of every `/v1` query response.
pub const QUERY_SCHEMA: &str = "trajserve-query/v1";

/// Options accepted by every `/v1` POST route.
#[derive(Debug, Default, serde::Deserialize)]
pub struct QueryOptions {
    /// Scoring measure: `"nm"` (default, the paper's normalized match)
    /// or `"match"` (raw window match probability).
    pub measure: Option<String>,
    /// Whether the pattern spatial index may prune far patterns
    /// (default `true`; scores are bit-identical either way).
    pub use_index: Option<bool>,
    /// Restrict scoring to these snapshot pattern indices (default: all).
    pub patterns: Option<Vec<usize>>,
}

impl QueryOptions {
    /// The requested measure, or a client-facing error message.
    pub fn measure(&self) -> Result<Measure, String> {
        match self.measure.as_deref() {
            None | Some("nm") => Ok(Measure::Nm),
            Some("match") => Ok(Measure::Match),
            Some(other) => Err(format!(
                "unknown measure '{other}' (expected 'nm' or 'match')"
            )),
        }
    }

    /// Whether index pruning is enabled (defaults to on).
    pub fn use_index(&self) -> bool {
        self.use_index.unwrap_or(true)
    }
}

/// A parsed `/v1` request body: the trajectories to query plus options.
#[derive(Debug, serde::Deserialize)]
pub struct QueryRequest {
    /// Trajectories the query runs over.
    pub trajectories: Vec<Trajectory>,
    /// Optional knobs; a plain dataset JSON leaves this `None`.
    pub options: Option<QueryOptions>,
}

impl QueryRequest {
    /// Parses a request body, mapping failures to structured 400s.
    pub fn parse(body: &[u8]) -> Result<QueryRequest, Response> {
        let text = std::str::from_utf8(body)
            .map_err(|_| Response::error(400, "request body is not UTF-8"))?;
        serde_json::from_str(text).map_err(|e| Response::error(400, &format!("bad query: {e}")))
    }

    /// The posted trajectories as a [`Dataset`], drained through the
    /// feed spine's in-memory source — the same path every other ingest
    /// takes, so posted bodies and replayed logs cannot diverge.
    pub fn dataset(&self) -> Dataset {
        let data: Dataset = self.trajectories.iter().cloned().collect();
        let mut feed = trajfeed::StaticFeed::from_dataset(data);
        let stop = std::sync::atomic::AtomicBool::new(false);
        trajfeed::drain(&mut feed, &stop)
            .expect("static feeds cannot fail")
            .into_iter()
            .collect()
    }

    /// The options block, defaulted when absent.
    pub fn options(&self) -> QueryOptions {
        QueryOptions {
            measure: self.options.as_ref().and_then(|o| o.measure.clone()),
            use_index: self.options.as_ref().and_then(|o| o.use_index),
            patterns: self.options.as_ref().and_then(|o| o.patterns.clone()),
        }
    }
}

/// Options accepted by the object-query routes (`/v1/prange`,
/// `/v1/pnn`, `/v1/matchlive`).
#[derive(Debug, Default, serde::Deserialize)]
pub struct ObjectQueryOptions {
    /// Whether the σ-expanded-bbox object index may prune provably
    /// below-τ candidates (default `true`; results are bit-identical
    /// either way).
    pub use_index: Option<bool>,
    /// §3.1 uncertainty growth per unit of elapsed time since the last
    /// snapshot (default 0). Only honored when the request posts its own
    /// trajectories — a live window's query set is built (and indexed)
    /// with the fleet's growth rate, so per-request overrides are a 400.
    pub growth_rate: Option<f64>,
}

impl ObjectQueryOptions {
    /// Whether index pruning is enabled (defaults to on).
    pub fn use_index(&self) -> bool {
        self.use_index.unwrap_or(true)
    }
}

/// A parsed object-query body: the probabilistic query parameters, plus
/// — in static mode — the trajectories to query over.
///
/// ```json
/// {
///   "p": [0.5, 0.5], "delta": 0.1, "t": 1.5, "tau": 0.5, "k": 4,
///   "trajectories": [ ... ],
///   "options": { "use_index": true, "growth_rate": 0.0 }
/// }
/// ```
///
/// `/v1/matchlive` uses `pattern` (grid cell ids) and `threshold`
/// instead of `p`/`delta`/`t`/`tau`/`k`.
#[derive(Debug, Default, serde::Deserialize)]
pub struct ObjectQueryRequest {
    /// Query point `[x, y]` (`prange` / `pnn`).
    pub p: Option<Vec<f64>>,
    /// Range radius δ (`prange`: required; `pnn`: defaults to the
    /// snapshot's mining δ).
    pub delta: Option<f64>,
    /// Query time (snapshot index; fractional values interpolate).
    pub t: Option<f64>,
    /// Probability threshold τ (default 0).
    pub tau: Option<f64>,
    /// Result count for `pnn`.
    pub k: Option<usize>,
    /// Pattern cell ids for `matchlive`.
    pub pattern: Option<Vec<u32>>,
    /// NM threshold for `matchlive` (default: no threshold).
    pub threshold: Option<f64>,
    /// Objects to query (static mode only; live mode queries the shard
    /// windows and rejects posted trajectories).
    pub trajectories: Option<Vec<Trajectory>>,
    /// Optional knobs.
    pub options: Option<ObjectQueryOptions>,
}

impl ObjectQueryRequest {
    /// Parses a request body, mapping failures to structured 400s.
    pub fn parse(body: &[u8]) -> Result<ObjectQueryRequest, Response> {
        let text = std::str::from_utf8(body)
            .map_err(|_| Response::error(400, "request body is not UTF-8"))?;
        serde_json::from_str(text).map_err(|e| Response::error(400, &format!("bad query: {e}")))
    }

    /// The query point, validated to be a finite `[x, y]` pair.
    pub fn point(&self) -> Result<trajgeo::Point2, Response> {
        let Some(p) = self.p.as_deref() else {
            return Err(Response::error(400, "query needs \"p\": [x, y]"));
        };
        let [x, y] = p else {
            return Err(Response::error(
                400,
                &format!("\"p\" must be [x, y] (got {} coordinates)", p.len()),
            ));
        };
        Ok(trajgeo::Point2::new(*x, *y))
    }

    /// The options block, defaulted when absent.
    pub fn options(&self) -> ObjectQueryOptions {
        ObjectQueryOptions {
            use_index: self.options.as_ref().and_then(|o| o.use_index),
            growth_rate: self.options.as_ref().and_then(|o| o.growth_rate),
        }
    }
}

/// Builder for the shared `trajserve-query/v1` response envelope. Fields
/// render in insertion order after the fixed `schema` and `query` tags,
/// so response bodies are deterministic.
#[derive(Debug)]
pub struct QueryResponse {
    fields: Vec<(String, serde_json::Value)>,
}

impl QueryResponse {
    /// Starts an envelope for the given query kind
    /// (`"score"` / `"match"` / `"predict"`).
    pub fn new(query: &str) -> QueryResponse {
        QueryResponse {
            fields: vec![
                (
                    "schema".to_string(),
                    serde_json::Value::String(QUERY_SCHEMA.to_string()),
                ),
                (
                    "query".to_string(),
                    serde_json::Value::String(query.to_string()),
                ),
            ],
        }
    }

    /// Appends one response field.
    pub fn field(mut self, name: &str, value: serde_json::Value) -> QueryResponse {
        self.fields.push((name.to_string(), value));
        self
    }

    /// Renders the envelope as a pretty-printed 200 response.
    pub fn into_response(self) -> Response {
        let value = serde_json::Value::Object(self.fields);
        Response::json(
            200,
            serde_json::to_string_pretty(&value).expect("query response serializes"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_dataset_json_is_a_valid_query() {
        let body = br#"{"trajectories": []}"#;
        let q = QueryRequest::parse(body).expect("parses");
        assert!(q.options.is_none());
        let opts = q.options();
        assert!(matches!(opts.measure().unwrap(), Measure::Nm));
        assert!(opts.use_index());
        assert!(opts.patterns.is_none());
    }

    #[test]
    fn options_round_trip() {
        let body = br#"{
            "trajectories": [],
            "options": {"measure": "match", "use_index": false, "patterns": [1, 3]}
        }"#;
        let q = QueryRequest::parse(body).expect("parses");
        let opts = q.options();
        assert!(matches!(opts.measure().unwrap(), Measure::Match));
        assert!(!opts.use_index());
        assert_eq!(opts.patterns.as_deref(), Some(&[1usize, 3][..]));
    }

    #[test]
    fn unknown_measure_is_a_client_error() {
        let body = br#"{"trajectories": [], "options": {"measure": "bogus"}}"#;
        let q = QueryRequest::parse(body).expect("parses");
        let err = q.options().measure().unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn bad_body_maps_to_structured_400() {
        let resp = QueryRequest::parse(b"not json").unwrap_err();
        assert_eq!(resp.status, 400);
        let body = String::from_utf8(resp.body).unwrap();
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["error"]["code"].as_str().unwrap(), "bad_request");
    }

    #[test]
    fn envelope_renders_schema_then_query_then_fields() {
        let resp = QueryResponse::new("score")
            .field("trajectories", serde_json::json!(2))
            .into_response();
        let body = String::from_utf8(resp.body).unwrap();
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["schema"].as_str().unwrap(), QUERY_SCHEMA);
        assert_eq!(v["query"].as_str().unwrap(), "score");
        assert_eq!(v["trajectories"].as_u64().unwrap(), 2);
        // The tags render before the payload fields.
        let schema_at = body.find("\"schema\"").unwrap();
        let traj_at = body.find("\"trajectories\"").unwrap();
        assert!(schema_at < traj_at);
    }
}
