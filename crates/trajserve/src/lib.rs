//! trajserve — a concurrent pattern-query server over mined TrajPattern
//! snapshots.
//!
//! The server loads a [`snapshot::Snapshot`] — either `trajmine mine
//! --json` output or a `trajstream` checkpoint — and answers HTTP/1.1
//! queries over it:
//!
//! | Route               | Answer                                            |
//! |---------------------|---------------------------------------------------|
//! | `GET /v1/topk`      | the loaded snapshot (patterns, NMs, groups)       |
//! | `POST /v1/score`    | NMs for posted trajectories, bit-identical to the |
//! |                     | library [`Scorer`](trajpattern::Scorer) path      |
//! | `POST /v1/match`    | best-NM pattern + group for a partial trajectory  |
//! | `POST /v1/predict`  | next-cell distribution via `prediction`           |
//! | `GET /healthz`      | liveness                                          |
//! | `GET /metrics`      | plain-text counters (requests, latency, queue, …) |
//!
//! Every `/v1` POST route shares one request/response schema (see
//! [`query`]): a dataset plus optional `options` (measure, index
//! pruning, pattern filter) in; a `trajserve-query/v1` envelope out.
//! Scoring runs through the [`Scorer::query`](trajpattern::Scorer::query)
//! builder against a pattern spatial index prebuilt at snapshot load, so
//! queries skip patterns whose cells lie outside the posted
//! trajectories' probability-mass corridor — bit-identical to the
//! unindexed path, but without touching far patterns' log-prob rows.
//! The unversioned `/topk`, `/score`, `/match`, and `/predict` routes
//! remain as deprecated aliases with their original response bodies.
//!
//! Everything is `std`-only: a [`std::net::TcpListener`] accept loop
//! feeds a bounded queue drained by a small worker pool, in the same
//! spirit as the scoped-thread scorer. The queue applies backpressure
//! (503 when full), each worker isolates request panics (a poisoned
//! request gets a 500 and the server keeps serving), and shutdown
//! drains in-flight work before the listener closes. With `--watch`
//! the server hot-reloads the snapshot when the file is rewritten —
//! e.g. a `trajmine stream` run refreshing its checkpoint.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod fanout;
pub mod fleet;
pub mod http;
pub mod metrics;
pub mod query;
pub mod server;
pub mod signal;
pub mod snapshot;

pub use fanout::{merge_topk, MergedEntry, ShardTopk};
pub use fleet::FleetState;
pub use query::{QueryOptions, QueryRequest, QueryResponse, QUERY_SCHEMA};
pub use server::{Loaded, ServeError, Server, ServerConfig, ServerHandle};
pub use snapshot::{Snapshot, SnapshotError, SCHEMA};
