//! trajserve — a concurrent pattern-query server over mined TrajPattern
//! snapshots.
//!
//! The server loads a [`snapshot::Snapshot`] — either `trajmine mine
//! --json` output or a `trajstream` checkpoint — and answers HTTP/1.1
//! queries over it:
//!
//! | Route            | Answer                                              |
//! |------------------|-----------------------------------------------------|
//! | `GET /topk`      | the loaded snapshot (patterns, NMs, groups)         |
//! | `POST /score`    | NMs for posted trajectories, bit-identical to the   |
//! |                  | library [`Scorer`](trajpattern::Scorer) path        |
//! | `POST /match`    | best-NM pattern + group for a partial trajectory    |
//! | `POST /predict`  | next-cell distribution via the `prediction` crate   |
//! | `GET /healthz`   | liveness                                            |
//! | `GET /metrics`   | plain-text counters (requests, latency, queue, …)   |
//!
//! Everything is `std`-only: a [`std::net::TcpListener`] accept loop
//! feeds a bounded queue drained by a small worker pool, in the same
//! spirit as the scoped-thread scorer. The queue applies backpressure
//! (503 when full), each worker isolates request panics (a poisoned
//! request gets a 500 and the server keeps serving), and shutdown
//! drains in-flight work before the listener closes. With `--watch`
//! the server hot-reloads the snapshot when the file is rewritten —
//! e.g. a `trajmine stream` run refreshing its checkpoint.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod metrics;
pub mod server;
pub mod signal;
pub mod snapshot;

pub use server::{Server, ServerConfig, ServerHandle};
pub use snapshot::{Snapshot, SnapshotError, SCHEMA};
