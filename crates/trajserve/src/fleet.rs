//! Live fleet state: one atomically-swappable [`Loaded`] per shard.
//!
//! `trajmine serve --live` runs one stream miner per shard (fleet,
//! region, tenant — the router key is opaque here). Whenever a shard's
//! certified top-k changes, its ingester builds a fresh pre-serialized
//! [`Loaded`] and [`FleetState::swap`]s it in — the same
//! `RwLock<Arc<Loaded>>` pattern the `--watch` hot reload uses, so a
//! `GET /v1/topk?shard=` read is a clone of a pre-rendered string no
//! matter how fast events arrive.
//!
//! The shard set is fixed at bind time and kept sorted by name — that
//! sorted order *is* the fixed fold order the cross-shard
//! [`merge`](crate::fanout::merge_topk) uses to break exact ties, which
//! is what makes the fan-out response bit-stable. The merged document
//! is cached per epoch (a counter bumped on every swap), so a fan-out
//! burst between writes serves one rendered string.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use trajpattern::stats::prometheus_labeled_counters;

use crate::fanout::{merge_topk, ShardTopk};
use crate::server::{Loaded, ServeError};

/// One shard's swappable serving state plus its counters.
#[derive(Debug)]
struct ShardSlot {
    name: String,
    loaded: RwLock<Arc<Loaded>>,
    /// The shard's current window as a probabilistic query set — swapped
    /// by the ingester on every slide (the window moves on every event,
    /// unlike the top-k, so it has its own slot and skips the fan-out
    /// cache's epoch).
    window: RwLock<Arc<trajquery::QuerySet>>,
    /// Snapshot swaps applied to this shard.
    swaps: AtomicU64,
    /// Requests answered from this shard (`?shard=` lookups).
    requests: AtomicU64,
    /// The shard's ingest-feed counters: `(feed kind, stats)`, published
    /// by the ingester after every delivered batch. The kind is empty
    /// until the feed produces its first batch.
    feed: RwLock<(String, trajfeed::FeedStats)>,
}

impl ShardSlot {
    fn loaded(&self) -> Arc<Loaded> {
        match self.loaded.read() {
            Ok(g) => Arc::clone(&g),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    fn window(&self) -> Arc<trajquery::QuerySet> {
        match self.window.read() {
            Ok(g) => Arc::clone(&g),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    fn feed(&self) -> (String, trajfeed::FeedStats) {
        match self.feed.read() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }
}

/// The shard router: a fixed, name-sorted set of [`ShardSlot`]s.
#[derive(Debug)]
pub struct FleetState {
    /// Sorted by name; the index in this vec is the shard's position in
    /// the fixed fold order.
    shards: Vec<ShardSlot>,
    /// Bumped on every swap; versions the merged fan-out cache.
    epoch: AtomicU64,
    /// `(epoch, rendered document)` of the last fan-out merge.
    merged: Mutex<Option<(u64, String)>>,
}

impl FleetState {
    /// Builds the router from `(name, prepared state)` pairs. Names must
    /// be unique and the set non-empty; the set is fixed for the
    /// server's lifetime.
    pub fn new(initial: Vec<(String, Arc<Loaded>)>) -> Result<FleetState, ServeError> {
        if initial.is_empty() {
            return Err(ServeError::Fleet(
                "a live fleet needs at least one shard".into(),
            ));
        }
        let mut shards: Vec<ShardSlot> = initial
            .into_iter()
            .map(|(name, loaded)| ShardSlot {
                name,
                loaded: RwLock::new(loaded),
                window: RwLock::new(Arc::new(trajquery::QuerySet::build(Vec::new(), 0.0))),
                swaps: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                feed: RwLock::new((String::new(), trajfeed::FeedStats::default())),
            })
            .collect();
        shards.sort_by(|a, b| a.name.cmp(&b.name));
        if let Some(w) = shards.windows(2).find(|w| w[0].name == w[1].name) {
            return Err(ServeError::Fleet(format!(
                "duplicate shard name '{}'",
                w[0].name
            )));
        }
        Ok(FleetState {
            shards,
            epoch: AtomicU64::new(0),
            merged: Mutex::new(None),
        })
    }

    /// Shard names in the fixed fold order (sorted).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.shards.iter().map(|s| s.name.as_str())
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `false` — the constructor rejects empty fleets — but clippy wants
    /// the pair.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The swap epoch: total swaps applied across shards since bind.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    fn slot(&self, name: &str) -> Option<&ShardSlot> {
        self.shards
            .binary_search_by(|s| s.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.shards[i])
    }

    /// The shard's current serving state, counting the lookup as a
    /// shard-routed request. `None` for unknown names.
    pub fn shard(&self, name: &str) -> Option<Arc<Loaded>> {
        let slot = self.slot(name)?;
        slot.requests.fetch_add(1, Ordering::Relaxed);
        Some(slot.loaded())
    }

    /// The shard's current window query set. `None` for unknown names.
    pub fn window(&self, name: &str) -> Option<Arc<trajquery::QuerySet>> {
        self.slot(name).map(ShardSlot::window)
    }

    /// Every shard's `(name, window query set)` in the fixed fold order
    /// — the input of the deterministic query fan-out.
    pub fn windows(&self) -> Vec<(&str, Arc<trajquery::QuerySet>)> {
        self.shards
            .iter()
            .map(|s| (s.name.as_str(), s.window()))
            .collect()
    }

    /// Atomically replaces `name`'s window query set (published by the
    /// ingester after every slide). Returns `false` for unknown names.
    /// The fan-out top-k cache is untouched: windows don't affect the
    /// merged top-k document.
    pub fn swap_window(&self, name: &str, next: Arc<trajquery::QuerySet>) -> bool {
        let Some(slot) = self.slot(name) else {
            return false;
        };
        match slot.window.write() {
            Ok(mut g) => *g = next,
            Err(poisoned) => *poisoned.into_inner() = next,
        }
        true
    }

    /// Publishes `name`'s ingest-feed counters (kind + stats), shown on
    /// `/metrics` with `shard=`/`feed=` labels and in `/v1/shards`.
    /// Returns `false` for unknown names.
    pub fn swap_feed_stats(&self, name: &str, kind: &str, stats: trajfeed::FeedStats) -> bool {
        let Some(slot) = self.slot(name) else {
            return false;
        };
        let next = (kind.to_string(), stats);
        match slot.feed.write() {
            Ok(mut g) => *g = next,
            Err(poisoned) => *poisoned.into_inner() = next,
        }
        true
    }

    /// Atomically replaces `name`'s serving state. Readers see the old
    /// or the new state, never a mix; the fan-out cache is invalidated
    /// by the epoch bump. Returns `false` for unknown names.
    pub fn swap(&self, name: &str, next: Arc<Loaded>) -> bool {
        let Some(slot) = self.slot(name) else {
            return false;
        };
        match slot.loaded.write() {
            Ok(mut g) => *g = next,
            Err(poisoned) => *poisoned.into_inner() = next,
        }
        slot.swaps.fetch_add(1, Ordering::Relaxed);
        // The epoch moves only after the slot holds the new state, so a
        // merge that observed the old state cannot be cached as current.
        self.epoch.fetch_add(1, Ordering::SeqCst);
        true
    }

    /// The fan-out document: the deterministic k-way merge of every
    /// shard's certified top-k, pre-rendered and cached until the next
    /// swap.
    pub fn merged_topk_json(&self) -> String {
        // Read the epoch *before* collecting shard states: if a swap
        // lands mid-merge, the stored epoch is stale and the next
        // request re-merges — the cache can under-live, never over-live.
        let epoch = self.epoch();
        {
            let cache = self.merged.lock().unwrap_or_else(|p| p.into_inner());
            if let Some((e, json)) = cache.as_ref() {
                if *e == epoch {
                    return json.clone();
                }
            }
        }

        let loaded: Vec<(usize, Arc<Loaded>)> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.loaded()))
            .collect();
        let k = loaded
            .iter()
            .map(|(_, l)| l.snapshot.params.k)
            .max()
            .unwrap_or(0);
        let inputs: Vec<ShardTopk<'_>> = loaded
            .iter()
            .map(|(i, l)| ShardTopk {
                shard: self.shards[*i].name.as_str(),
                patterns: &l.snapshot.patterns,
            })
            .collect();
        let merged = merge_topk(&inputs, k);
        let entries: Vec<serde_json::Value> = merged
            .iter()
            .map(|m| {
                serde_json::json!({
                    "shard": m.shard,
                    "pattern": m.entry.pattern,
                    "nm": m.entry.nm,
                })
            })
            .collect();
        let names: Vec<&str> = self.names().collect();
        let json = serde_json::to_string_pretty(&serde_json::json!({
            "schema": "trajserve-fanout/v1",
            "k": k,
            "shards": names,
            "patterns": entries,
        }))
        .expect("fan-out document serializes");

        let mut cache = self.merged.lock().unwrap_or_else(|p| p.into_inner());
        *cache = Some((epoch, json.clone()));
        json
    }

    /// The `/v1/shards` document: per-shard serving state at a glance.
    pub fn shards_json(&self) -> String {
        let shards: Vec<serde_json::Value> = self
            .shards
            .iter()
            .map(|s| {
                let loaded = s.loaded();
                let snap = &loaded.snapshot;
                let window = s.window();
                let bounds = window.time_bounds();
                let (feed_kind, feed_stats) = s.feed();
                let feed = if feed_kind.is_empty() {
                    serde_json::Value::Null
                } else {
                    serde_json::json!({
                        "kind": feed_kind,
                        "stats": feed_stats,
                    })
                };
                serde_json::json!({
                    "name": s.name,
                    "patterns": snap.patterns.len(),
                    "groups": snap.groups.len(),
                    "next_seq": snap.next_seq,
                    "swaps": s.swaps.load(Ordering::Relaxed),
                    "requests": s.requests.load(Ordering::Relaxed),
                    // Window time bounds: the min/max event time a
                    // `prange`/`pnn` `t` can hit on this shard right
                    // now (`null` while the window holds no points).
                    "window": serde_json::json!({
                        "objects": window.len(),
                        "t_min": bounds.map(|(lo, _)| lo),
                        "t_max": bounds.map(|(_, hi)| hi),
                    }),
                    "stream": snap.stream,
                    "feed": feed,
                })
            })
            .collect();
        serde_json::to_string_pretty(&serde_json::json!({
            "schema": "trajserve-shards/v1",
            "epoch": self.epoch(),
            "shards": shards,
        }))
        .expect("shard listing serializes")
    }

    /// Appends the per-shard metric lines: swap/request counters, top-k
    /// sizes, and each shard's stream-counter block rendered through the
    /// shared `counter_stats!` machinery with a `shard` label.
    pub fn render_metrics(&self, out: &mut String) {
        use std::fmt::Write;
        writeln!(out, "trajserve_fleet_shards {}", self.len())
            .expect("writing to a String cannot fail");
        writeln!(out, "trajserve_fleet_epoch {}", self.epoch())
            .expect("writing to a String cannot fail");
        for s in &self.shards {
            let labels = format!("shard=\"{}\"", s.name);
            let loaded = s.loaded();
            writeln!(
                out,
                "trajserve_shard_swaps_total{{{labels}}} {}",
                s.swaps.load(Ordering::Relaxed)
            )
            .expect("writing to a String cannot fail");
            writeln!(
                out,
                "trajserve_shard_requests_total{{{labels}}} {}",
                s.requests.load(Ordering::Relaxed)
            )
            .expect("writing to a String cannot fail");
            writeln!(
                out,
                "trajserve_shard_patterns{{{labels}}} {}",
                loaded.snapshot.patterns.len()
            )
            .expect("writing to a String cannot fail");
            if let Some(stream) = &loaded.snapshot.stream {
                prometheus_labeled_counters(
                    out,
                    "trajserve_shard_stream",
                    &labels,
                    &stream.counters(),
                );
            }
            let (feed_kind, feed_stats) = s.feed();
            if !feed_kind.is_empty() {
                let feed_labels = format!("{labels},feed=\"{feed_kind}\"");
                prometheus_labeled_counters(out, "trajfeed", &feed_labels, &feed_stats.counters());
            }
        }
    }
}
