//! The server proper: a bounded-queue worker pool over a non-blocking
//! accept loop, in the same scoped-thread spirit as the batch scorer.
//!
//! Life of a connection:
//!
//! ```text
//! accept ── try_send ──▶ bounded queue ──▶ worker: read → route → write
//!              │ full                          │ panic in a route
//!              ▼                               ▼
//!          503 busy                    500, worker survives
//! ```
//!
//! Shutdown (via [`ServerHandle::shutdown`] or a termination signal
//! wired up by the CLI) stops the accept loop, closes the queue, and
//! lets every worker drain the connections it already holds — in-flight
//! requests finish and are answered with `Connection: close`.

use std::io::{BufReader, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use prediction::PatternLibrary;
use trajdata::{Dataset, Trajectory};
use trajpattern::{Pattern, PatternIndex, Scorer};

use trajgeo::CellId;
use trajquery::QuerySet;

use crate::fanout::{merge_matches, merge_range, ShardRanked};
use crate::http::{read_request, write_response, Request, RequestError, Response};
use crate::metrics::{endpoint_index, Metrics};
use crate::query::{ObjectQueryRequest, QueryRequest, QueryResponse};
use crate::snapshot::Snapshot;

/// Everything tunable about a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded accept-queue capacity; a full queue answers 503.
    pub queue: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Threads per request-serving [`Scorer`] (`1` = sequential; scores
    /// are bit-identical for every value).
    pub scorer_threads: usize,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Confirmation probability threshold for `/predict` (paper §6.1
    /// uses 0.9).
    pub confirm_threshold: f64,
    /// Hot-reload the snapshot when `snapshot_path` is rewritten.
    pub watch: bool,
    /// How often the watcher polls the snapshot file.
    pub watch_interval: Duration,
    /// The file the served snapshot came from (needed for `watch`).
    pub snapshot_path: Option<PathBuf>,
    /// Honor the `x-trajserve-inject-panic` header (tests/CI only):
    /// the request handler panics, proving panic isolation end to end.
    pub allow_panic_injection: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 2,
            queue: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            scorer_threads: 1,
            max_body: 16 * 1024 * 1024,
            confirm_threshold: 0.9,
            watch: false,
            watch_interval: Duration::from_millis(500),
            snapshot_path: None,
            allow_panic_injection: false,
        }
    }
}

/// Why a server could not be brought up.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listen socket failed.
    Io(std::io::Error),
    /// The snapshot cannot back a pattern library (bad confirm
    /// threshold — snapshot params are validated at load time).
    Library(prediction::LibraryError),
    /// The live shard set is unusable (empty, or duplicate names).
    Fleet(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "cannot start server: {e}"),
            ServeError::Library(e) => write!(f, "cannot build pattern library: {e}"),
            ServeError::Fleet(msg) => write!(f, "cannot assemble live fleet: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Library(e) => Some(e),
            ServeError::Fleet(_) => None,
        }
    }
}

/// An immutable, fully-prepared snapshot the workers serve from. Hot
/// reload swaps the whole `Arc<Loaded>` atomically, so a request sees
/// either the old or the new snapshot, never a mix.
#[derive(Debug)]
pub struct Loaded {
    /// The snapshot being served.
    pub snapshot: Snapshot,
    /// Prediction library over the snapshot's ≥2-cell patterns.
    pub library: PatternLibrary,
    /// Pre-rendered `/topk` response body (the snapshot's JSON).
    pub topk_json: String,
    /// The snapshot's pattern list, extracted once — request handlers
    /// borrow this instead of re-cloning per request.
    pub patterns: Vec<Pattern>,
    /// Spatial index over the patterns' cell bounding boxes, built once
    /// per snapshot; `/v1` scoring consults it to skip patterns whose
    /// cells lie outside the query's probability-mass corridor.
    pub index: PatternIndex,
}

impl Loaded {
    /// Prepares a snapshot for serving.
    pub fn build(snapshot: Snapshot, confirm_threshold: f64) -> Result<Loaded, ServeError> {
        let library = PatternLibrary::new(
            snapshot.patterns.clone(),
            snapshot.grid.clone(),
            snapshot.params.delta,
            snapshot.params.min_prob,
            confirm_threshold,
        )
        .map_err(ServeError::Library)?;
        let topk_json = snapshot.to_json_pretty();
        let patterns: Vec<Pattern> = snapshot
            .patterns
            .iter()
            .map(|m| m.pattern.clone())
            .collect();
        let index = PatternIndex::build(&patterns, &snapshot.grid);
        Ok(Loaded {
            snapshot,
            library,
            topk_json,
            patterns,
            index,
        })
    }
}

/// State shared by the accept loop, the workers, and the watcher.
#[derive(Debug)]
pub struct ServeState {
    loaded: RwLock<Arc<Loaded>>,
    /// The server's counters (rendered by `GET /metrics`).
    pub metrics: Metrics,
    /// Per-shard live state — `Some` only for [`Server::bind_fleet`].
    fleet: Option<crate::fleet::FleetState>,
}

impl ServeState {
    /// The currently-served snapshot bundle. In live mode this is the
    /// *base* bundle (empty top-k over the fleet's grid); shard-scoped
    /// requests resolve through [`ServeState::fleet`] instead.
    pub fn loaded(&self) -> Arc<Loaded> {
        match self.loaded.read() {
            Ok(g) => Arc::clone(&g),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// The shard router, when serving live.
    pub fn fleet(&self) -> Option<&crate::fleet::FleetState> {
        self.fleet.as_ref()
    }

    fn swap(&self, next: Arc<Loaded>) {
        match self.loaded.write() {
            Ok(mut g) => *g = next,
            Err(poisoned) => *poisoned.into_inner() = next,
        }
    }
}

/// A handle for stopping a running [`Server`] from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Requests a graceful shutdown: stop accepting, drain in-flight
    /// requests, then return from [`Server::run`].
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// The pattern-query server. Bind, grab a [`ServerHandle`], then
/// [`run`](Server::run) (which blocks until shutdown).
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    cfg: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Prepares the snapshot and binds the listen socket. Nothing is
    /// served until [`run`](Server::run).
    pub fn bind(snapshot: Snapshot, cfg: ServerConfig) -> Result<Server, ServeError> {
        let loaded = Loaded::build(snapshot, cfg.confirm_threshold)?;
        Server::bind_with(loaded, None, cfg)
    }

    /// Binds a live fleet server: one swappable [`Loaded`] per shard
    /// (from the shards' initial — possibly resumed — snapshots), with
    /// `GET /v1/topk?shard=` routed per shard, the bare `/v1/topk`
    /// answering the cross-shard fan-out merge, and `/v1/shards`
    /// listing shard states. The base (non-shard) snapshot is the first
    /// shard's, emptied — it backs `/metrics` gauges, nothing else.
    pub fn bind_fleet(
        shards: Vec<(String, Snapshot)>,
        cfg: ServerConfig,
    ) -> Result<Server, ServeError> {
        let Some(first) = shards.first() else {
            return Err(ServeError::Fleet(
                "a live fleet needs at least one shard".into(),
            ));
        };
        let mut base = first.1.clone();
        base.patterns = Vec::new();
        base.groups = Vec::new();
        base.stats = Default::default();
        base.scorer = Default::default();
        base.stream = None;
        base.next_seq = None;
        let base = Loaded::build(base, cfg.confirm_threshold)?;
        let mut initial = Vec::with_capacity(shards.len());
        for (name, snapshot) in shards {
            initial.push((
                name,
                Arc::new(Loaded::build(snapshot, cfg.confirm_threshold)?),
            ));
        }
        let fleet = crate::fleet::FleetState::new(initial)?;
        Server::bind_with(base, Some(fleet), cfg)
    }

    fn bind_with(
        loaded: Loaded,
        fleet: Option<crate::fleet::FleetState>,
        cfg: ServerConfig,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&cfg.addr).map_err(ServeError::Io)?;
        listener.set_nonblocking(true).map_err(ServeError::Io)?;
        Ok(Server {
            listener,
            state: Arc::new(ServeState {
                loaded: RwLock::new(Arc::new(loaded)),
                metrics: Metrics::default(),
                fleet,
            }),
            cfg,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with `:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared state — exposed so embedders (benches, tests) can read
    /// counters without going through `/metrics`.
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// A shutdown handle usable from any thread (and from the CLI's
    /// signal watcher).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// Serves until shutdown is requested, then drains and returns.
    pub fn run(self) -> std::io::Result<()> {
        let queue = self.cfg.queue.max(1);
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(queue);
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::new();
        for i in 0..self.cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            let cfg = self.cfg.clone();
            let shutdown = Arc::clone(&self.shutdown);
            workers.push(
                thread::Builder::new()
                    .name(format!("trajserve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &state, &cfg, &shutdown))?,
            );
        }

        let watcher = match (&self.cfg.snapshot_path, self.cfg.watch) {
            (Some(path), true) => {
                let path = path.clone();
                let state = Arc::clone(&self.state);
                let cfg = self.cfg.clone();
                let shutdown = Arc::clone(&self.shutdown);
                Some(
                    thread::Builder::new()
                        .name("trajserve-watch".into())
                        .spawn(move || watch_loop(&path, &state, &cfg, &shutdown))?,
                )
            }
            _ => None,
        };

        let idle = Duration::from_millis(2);
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Count before enqueueing so a fast worker's decrement
                    // can never underflow the gauge.
                    self.state
                        .metrics
                        .queue_depth
                        .fetch_add(1, Ordering::Relaxed);
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(mut stream)) => {
                            self.state
                                .metrics
                                .queue_depth
                                .fetch_sub(1, Ordering::Relaxed);
                            self.state
                                .metrics
                                .rejected_busy
                                .fetch_add(1, Ordering::Relaxed);
                            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                            let busy = Response::error(503, "server busy: request queue is full");
                            let _ = write_response(&mut stream, &busy, false);
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            self.state
                                .metrics
                                .queue_depth
                                .fetch_sub(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(idle),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => thread::sleep(idle),
            }
        }

        // Drain: close the queue, let workers finish what they hold.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        if let Some(w) = watcher {
            let _ = w.join();
        }
        Ok(())
    }
}

fn worker_loop(
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    state: &ServeState,
    cfg: &ServerConfig,
    shutdown: &AtomicBool,
) {
    loop {
        // Hold the lock only for the dequeue, never while handling.
        let next = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        let Ok(stream) = next else {
            return; // queue closed: accept loop is shutting down
        };
        state.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        // Outer isolation: a panic that escapes connection handling
        // kills this connection, not the worker.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_connection(stream, state, cfg, shutdown);
        }));
        if outcome.is_err() {
            state.metrics.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    state: &ServeState,
    cfg: &ServerConfig,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let Ok(mut write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        let req = match read_request(&mut reader, cfg.max_body) {
            Ok(req) => req,
            Err(RequestError::Closed) | Err(RequestError::Io(_)) => return,
            Err(RequestError::Timeout) => {
                let _ = write_response(
                    &mut write_half,
                    &Response::error(408, "request read timed out"),
                    false,
                );
                return;
            }
            Err(RequestError::Malformed(msg)) => {
                let _ = write_response(&mut write_half, &Response::error(400, &msg), false);
                return;
            }
            Err(RequestError::TooLarge { limit }) => {
                let msg = format!("request body exceeds {limit} bytes");
                let _ = write_response(&mut write_half, &Response::error(413, &msg), false);
                return;
            }
        };

        let started = Instant::now();
        state.metrics.inflight.fetch_add(1, Ordering::Relaxed);
        // Inner isolation: a panicking route handler poisons only its
        // own request — the connection answers 500 and keeps serving.
        let response =
            catch_unwind(AssertUnwindSafe(|| route(state, cfg, &req))).unwrap_or_else(|_| {
                state.metrics.panics.fetch_add(1, Ordering::Relaxed);
                Response::error(500, "internal error: request handler panicked")
            });
        state.metrics.inflight.fetch_sub(1, Ordering::Relaxed);
        state.metrics.observe(
            endpoint_index(&req.path),
            response.status,
            started.elapsed().as_secs_f64(),
        );

        let keep = req.keep_alive && !shutdown.load(Ordering::SeqCst);
        if write_response(&mut write_half, &response, keep).is_err() || !keep {
            return;
        }
    }
}

fn route(state: &ServeState, cfg: &ServerConfig, req: &Request) -> Response {
    if cfg.allow_panic_injection && req.header("x-trajserve-inject-panic").is_some() {
        panic!("injected request panic (x-trajserve-inject-panic)");
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => {
            let loaded = state.loaded();
            let mut text = state.metrics.render(&loaded.snapshot);
            if let Some(fleet) = state.fleet() {
                fleet.render_metrics(&mut text);
            }
            Response::text(200, text)
        }
        // `/topk` is a deprecated alias for `/v1/topk` (same body). In
        // live mode `?shard=NAME` reads that shard's pre-serialized
        // snapshot; no shard (or `shard=*`) answers the deterministic
        // cross-shard fan-out merge.
        ("GET", "/topk" | "/v1/topk") => match state.fleet() {
            None => Response::json(200, state.loaded().topk_json.clone()),
            Some(fleet) => match req.query_param("shard") {
                None | Some("" | "*") => Response::json(200, fleet.merged_topk_json()),
                Some(name) => match fleet.shard(name) {
                    Some(loaded) => Response::json(200, loaded.topk_json.clone()),
                    None => Response::error(404, &format!("no such shard '{name}'")),
                },
            },
        },
        ("GET", "/v1/shards") => match state.fleet() {
            Some(fleet) => Response::json(200, fleet.shards_json()),
            None => Response::error(404, "/v1/shards is only served by `serve --live`"),
        },
        // Probabilistic object queries over uncertain trajectories. In
        // static mode the request posts its own objects; in live mode
        // `?shard=NAME` queries that shard's window, and a bare call
        // fans out across every shard with a deterministic merge.
        ("POST", "/v1/prange") => prange_route(state, req),
        ("POST", "/v1/pnn") => pnn_route(state, req),
        ("POST", "/v1/matchlive") => matchlive_route(state, cfg, req),
        ("POST", "/v1/score") => match resolve_loaded(state, req) {
            Ok(loaded) => v1_score_route(state, cfg, &loaded, req),
            Err(resp) => resp,
        },
        ("POST", "/v1/match") => match resolve_loaded(state, req) {
            Ok(loaded) => v1_match_route(state, cfg, &loaded, req),
            Err(resp) => resp,
        },
        ("POST", "/v1/predict") => match resolve_loaded(state, req) {
            Ok(loaded) => v1_predict_route(cfg, &loaded, req),
            Err(resp) => resp,
        },
        // Deprecated pre-`/v1` aliases; original response bodies kept
        // verbatim so existing clients keep working.
        ("POST", "/score") => match resolve_loaded(state, req) {
            Ok(loaded) => score_route(state, cfg, &loaded, req),
            Err(resp) => resp,
        },
        ("POST", "/match") => match resolve_loaded(state, req) {
            Ok(loaded) => match_route(state, cfg, &loaded, req),
            Err(resp) => resp,
        },
        ("POST", "/predict") => match resolve_loaded(state, req) {
            Ok(loaded) => predict_route(cfg, &loaded, req),
            Err(resp) => resp,
        },
        (
            _,
            "/healthz" | "/metrics" | "/topk" | "/score" | "/match" | "/predict" | "/v1/topk"
            | "/v1/score" | "/v1/match" | "/v1/predict" | "/v1/shards" | "/v1/prange" | "/v1/pnn"
            | "/v1/matchlive",
        ) => Response::error(405, "method not allowed for this route"),
        _ => Response::error(404, "no such route"),
    }
}

/// Which [`Loaded`] a scoring/prediction request runs against: the one
/// static snapshot in classic mode, or the named shard's in live mode
/// (where a bare request has no principled single answer, so `?shard=`
/// is required — fan-out scoring would multiply work per request).
fn resolve_loaded(state: &ServeState, req: &Request) -> Result<Arc<Loaded>, Response> {
    match state.fleet() {
        None => Ok(state.loaded()),
        Some(fleet) => match req.query_param("shard") {
            Some(name) if !name.is_empty() && name != "*" => fleet
                .shard(name)
                .ok_or_else(|| Response::error(404, &format!("no such shard '{name}'"))),
            _ => Err(Response::error(
                400,
                "live mode: this route needs ?shard=NAME (see /v1/shards)",
            )),
        },
    }
}

/// Which query sets an object query (`/v1/prange`, `/v1/pnn`,
/// `/v1/matchlive`) runs over.
enum QueryTarget {
    /// Static mode: the set built from the posted trajectories.
    Static(QuerySet),
    /// Live, `?shard=NAME`: that shard's current window.
    Shard(String, Arc<QuerySet>),
    /// Live, bare (or `shard=*`): every shard's window in the fixed
    /// fold order — the deterministic fan-out.
    Fanout(Vec<(String, Arc<QuerySet>)>),
}

/// Resolves an object query's target. Unlike the scoring routes, a bare
/// live call is answered (fan-out + deterministic merge) rather than
/// rejected — object queries are cheap per shard and the merged ranking
/// is well-defined.
fn resolve_query_target(
    state: &ServeState,
    req: &Request,
    query: &ObjectQueryRequest,
) -> Result<QueryTarget, Response> {
    match state.fleet() {
        None => {
            let Some(trajectories) = &query.trajectories else {
                return Err(Response::error(
                    400,
                    "static mode: post \"trajectories\" to query over",
                ));
            };
            let growth_rate = query.options().growth_rate.unwrap_or(0.0);
            if !growth_rate.is_finite() || growth_rate < 0.0 {
                return Err(Response::error(
                    400,
                    &format!("growth_rate {growth_rate} must be finite and >= 0"),
                ));
            }
            let objects = trajectories
                .iter()
                .enumerate()
                .map(|(i, t)| (i as u64, t.clone()))
                .collect();
            Ok(QueryTarget::Static(QuerySet::build(objects, growth_rate)))
        }
        Some(fleet) => {
            if query.trajectories.is_some() {
                return Err(Response::error(
                    400,
                    "live mode: object queries run over the shard windows; do not post trajectories",
                ));
            }
            if query.options().growth_rate.is_some() {
                return Err(Response::error(
                    400,
                    "live mode: growth_rate is fixed when the window index is built",
                ));
            }
            match req.query_param("shard") {
                Some(name) if !name.is_empty() && name != "*" => match fleet.window(name) {
                    Some(window) => Ok(QueryTarget::Shard(name.to_string(), window)),
                    None => Err(Response::error(404, &format!("no such shard '{name}'"))),
                },
                _ => Ok(QueryTarget::Fanout(
                    fleet
                        .windows()
                        .into_iter()
                        .map(|(name, w)| (name.to_string(), w))
                        .collect(),
                )),
            }
        }
    }
}

fn query_error(e: trajquery::QueryError) -> Response {
    Response::error(400, &e.to_string())
}

/// Runs `prange` (or `pnn`, when `k` is set) on one query set, honoring
/// the `use_index` knob — results are bit-identical either way.
fn run_range_query(
    set: &QuerySet,
    use_index: bool,
    p: trajgeo::Point2,
    delta: f64,
    t: f64,
    tau: f64,
    k: Option<usize>,
) -> Result<Vec<trajquery::RangeMatch>, Response> {
    match (k, use_index) {
        (None, true) => set.prange(p, delta, t, tau),
        (None, false) => set.prange_bruteforce(p, delta, t, tau),
        (Some(k), true) => set.pnn(p, t, k, tau, delta),
        (Some(k), false) => set.pnn_bruteforce(p, t, k, tau, delta),
    }
    .map_err(query_error)
}

fn range_matches_value(matches: &[trajquery::RangeMatch]) -> serde_json::Value {
    serde_json::Value::Array(
        matches
            .iter()
            .map(|m| serde_json::json!({ "id": m.id, "prob": m.prob }))
            .collect(),
    )
}

fn merged_range_value(merged: &[(&str, trajquery::RangeMatch)]) -> serde_json::Value {
    serde_json::Value::Array(
        merged
            .iter()
            .map(|(shard, m)| serde_json::json!({ "shard": shard, "id": m.id, "prob": m.prob }))
            .collect(),
    )
}

/// The shared body of `/v1/prange` and `/v1/pnn` (they differ only in
/// `k` and the δ default).
fn range_route(state: &ServeState, req: &Request, kind: &str) -> Response {
    let query = match ObjectQueryRequest::parse(&req.body) {
        Ok(q) => q,
        Err(resp) => return resp,
    };
    let p = match query.point() {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let Some(t) = query.t else {
        return Response::error(400, &format!("{kind} needs \"t\" (query time)"));
    };
    let tau = query.tau.unwrap_or(0.0);
    let k = match kind {
        "pnn" => match query.k {
            Some(k) => Some(k),
            None => return Response::error(400, "pnn needs \"k\" (result count)"),
        },
        _ => None,
    };
    let delta = match query.delta {
        Some(d) => d,
        // `pnn` ranks by within-δ probability; absent an explicit δ it
        // uses the mining δ the served snapshot was built with.
        None if kind == "pnn" => state.loaded().snapshot.params.delta,
        None => return Response::error(400, "prange needs \"delta\" (range radius)"),
    };
    let use_index = query.options().use_index();
    match resolve_query_target(state, req, &query) {
        Err(resp) => resp,
        Ok(QueryTarget::Static(set)) => {
            match run_range_query(&set, use_index, p, delta, t, tau, k) {
                Err(resp) => resp,
                Ok(matches) => {
                    let mut resp =
                        QueryResponse::new(kind).field("objects", serde_json::json!(set.len()));
                    if let Some(k) = k {
                        resp = resp.field("k", serde_json::json!(k));
                    }
                    resp.field("matches", range_matches_value(&matches))
                        .into_response()
                }
            }
        }
        Ok(QueryTarget::Shard(name, set)) => {
            match run_range_query(&set, use_index, p, delta, t, tau, k) {
                Err(resp) => resp,
                Ok(matches) => {
                    let mut resp = QueryResponse::new(kind)
                        .field("shard", serde_json::json!(name))
                        .field("objects", serde_json::json!(set.len()));
                    if let Some(k) = k {
                        resp = resp.field("k", serde_json::json!(k));
                    }
                    resp.field("matches", range_matches_value(&matches))
                        .into_response()
                }
            }
        }
        Ok(QueryTarget::Fanout(windows)) => {
            let mut objects = 0usize;
            let mut per_shard = Vec::with_capacity(windows.len());
            for (name, set) in &windows {
                objects += set.len();
                match run_range_query(set, use_index, p, delta, t, tau, k) {
                    Err(resp) => return resp,
                    Ok(matches) => per_shard.push((name.as_str(), matches)),
                }
            }
            let inputs: Vec<ShardRanked<'_, trajquery::RangeMatch>> = per_shard
                .iter()
                .map(|(name, matches)| ShardRanked {
                    shard: name,
                    entries: matches,
                })
                .collect();
            let merged = merge_range(&inputs, k.unwrap_or(usize::MAX));
            let names: Vec<&str> = per_shard.iter().map(|(n, _)| *n).collect();
            let mut resp = QueryResponse::new(kind)
                .field("shards", serde_json::json!(names))
                .field("objects", serde_json::json!(objects));
            if let Some(k) = k {
                resp = resp.field("k", serde_json::json!(k));
            }
            resp.field("matches", merged_range_value(&merged))
                .into_response()
        }
    }
}

/// `POST /v1/prange`: objects within δ of `p` at time `t` with
/// probability ≥ τ, ranked probability descending (ties by id).
fn prange_route(state: &ServeState, req: &Request) -> Response {
    range_route(state, req, "prange")
}

/// `POST /v1/pnn`: the k most-probable objects within δ of `p` at time
/// `t`, among those with probability ≥ τ. Deterministic tie-breaking.
fn pnn_route(state: &ServeState, req: &Request) -> Response {
    range_route(state, req, "pnn")
}

/// `POST /v1/matchlive`: which objects match the posted pattern with
/// NM ≥ threshold — over the posted trajectories (static) or the
/// current shard windows (live).
fn matchlive_route(state: &ServeState, cfg: &ServerConfig, req: &Request) -> Response {
    let query = match ObjectQueryRequest::parse(&req.body) {
        Ok(q) => q,
        Err(resp) => return resp,
    };
    let Some(cells) = &query.pattern else {
        return Response::error(400, "matchlive needs \"pattern\" (grid cell ids)");
    };
    let Some(pattern) = Pattern::new(cells.iter().map(|&c| CellId(c)).collect()) else {
        return Response::error(400, "\"pattern\" must list at least one cell");
    };
    let threshold = query.threshold.unwrap_or(f64::NEG_INFINITY);
    let loaded = state.loaded();
    let (grid, delta, min_prob) = (
        &loaded.snapshot.grid,
        loaded.snapshot.params.delta,
        loaded.snapshot.params.min_prob,
    );
    let run = |set: &QuerySet| {
        set.match_pattern(
            grid,
            delta,
            min_prob,
            cfg.scorer_threads,
            &pattern,
            threshold,
        )
        .map_err(query_error)
    };
    let match_value = |matches: &[trajquery::PatternMatch]| {
        serde_json::Value::Array(
            matches
                .iter()
                .map(|m| serde_json::json!({ "id": m.id, "nm": m.nm }))
                .collect(),
        )
    };
    match resolve_query_target(state, req, &query) {
        Err(resp) => resp,
        Ok(QueryTarget::Static(set)) => match run(&set) {
            Err(resp) => resp,
            Ok(matches) => QueryResponse::new("matchlive")
                .field("pattern", serde_json::json!(pattern.cells()))
                .field("objects", serde_json::json!(set.len()))
                .field("matches", match_value(&matches))
                .into_response(),
        },
        Ok(QueryTarget::Shard(name, set)) => match run(&set) {
            Err(resp) => resp,
            Ok(matches) => QueryResponse::new("matchlive")
                .field("pattern", serde_json::json!(pattern.cells()))
                .field("shard", serde_json::json!(name))
                .field("objects", serde_json::json!(set.len()))
                .field("matches", match_value(&matches))
                .into_response(),
        },
        Ok(QueryTarget::Fanout(windows)) => {
            let mut objects = 0usize;
            let mut per_shard = Vec::with_capacity(windows.len());
            for (name, set) in &windows {
                objects += set.len();
                match run(set) {
                    Err(resp) => return resp,
                    Ok(matches) => per_shard.push((name.as_str(), matches)),
                }
            }
            let inputs: Vec<ShardRanked<'_, trajquery::PatternMatch>> = per_shard
                .iter()
                .map(|(name, matches)| ShardRanked {
                    shard: name,
                    entries: matches,
                })
                .collect();
            let merged = merge_matches(&inputs);
            let entries: Vec<serde_json::Value> = merged
                .iter()
                .map(|(shard, m)| serde_json::json!({ "shard": shard, "id": m.id, "nm": m.nm }))
                .collect();
            let names: Vec<&str> = per_shard.iter().map(|(n, _)| *n).collect();
            QueryResponse::new("matchlive")
                .field("pattern", serde_json::json!(pattern.cells()))
                .field("shards", serde_json::json!(names))
                .field("objects", serde_json::json!(objects))
                .field("matches", serde_json::Value::Array(entries))
                .into_response()
        }
    }
}

fn parse_dataset(req: &Request) -> Result<Dataset, Response> {
    let body = std::str::from_utf8(&req.body)
        .map_err(|_| Response::error(400, "request body is not UTF-8"))?;
    Dataset::from_json(body).map_err(|e| Response::error(400, &format!("bad dataset: {e}")))
}

/// Scores `batch` over `data` through the [`Scorer::query`] builder —
/// the one scoring entry point shared by every route. `index` enables
/// spatial pruning of far patterns; NMs are bit-identical either way.
fn score_with(
    state: &ServeState,
    cfg: &ServerConfig,
    loaded: &Loaded,
    data: &Dataset,
    batch: &[Pattern],
    measure: trajpattern::Measure,
    index: Option<&PatternIndex>,
) -> Vec<f64> {
    let snap = &loaded.snapshot;
    let scorer = Scorer::with_threads(
        data,
        &snap.grid,
        snap.params.delta,
        snap.params.min_prob,
        cfg.scorer_threads,
    );
    let request = scorer.query(batch).measure(measure);
    let nms = match index {
        Some(ix) => request.with_index(ix).run(),
        None => request.run(),
    };
    accumulate_scorer(state, &scorer, data.len());
    nms
}

/// Resolves a `/v1` pattern filter into `(snapshot indices, batch)`.
/// No filter selects the whole snapshot.
fn select_patterns(
    loaded: &Loaded,
    filter: Option<&[usize]>,
) -> Result<(Vec<usize>, Vec<Pattern>), Response> {
    match filter {
        None => Ok((
            (0..loaded.patterns.len()).collect(),
            loaded.patterns.clone(),
        )),
        Some(wanted) => {
            let mut batch = Vec::with_capacity(wanted.len());
            for &i in wanted {
                let Some(p) = loaded.patterns.get(i) else {
                    return Err(Response::error(
                        400,
                        &format!(
                            "pattern filter index {i} out of range (snapshot holds {} patterns)",
                            loaded.patterns.len()
                        ),
                    ));
                };
                batch.push(p.clone());
            }
            Ok((wanted.to_vec(), batch))
        }
    }
}

/// The `best` object shared by `/match` and `/v1/match`: the first
/// strict maximum among finite scores (snapshot order is best-NM-first,
/// so ties resolve to the canonical winner), reported with its snapshot
/// index, cells, score, and pattern-group assignment.
fn best_match_value(
    snap: &Snapshot,
    indices: &[usize],
    batch: &[Pattern],
    nms: &[f64],
) -> serde_json::Value {
    let mut best: Option<usize> = None;
    for (i, nm) in nms.iter().enumerate() {
        if nm.is_finite() && best.is_none_or(|b| *nm > nms[b]) {
            best = Some(i);
        }
    }
    match best {
        Some(i) => {
            let group = snap
                .groups
                .iter()
                .position(|g| g.patterns.iter().any(|m| m.pattern == batch[i]));
            serde_json::json!({
                "index": indices[i],
                "cells": batch[i].cells(),
                "nm": nms[i],
                "group": match group {
                    Some(g) => serde_json::to_value(&g).expect("group index serializes"),
                    None => serde_json::Value::Null,
                },
            })
        }
        None => serde_json::Value::Null,
    }
}

/// The prediction payload shared by `/predict` and `/v1/predict`:
/// `(velocity, confirming count, next-cell distribution)`.
fn predict_value(
    loaded: &Loaded,
    cfg: &ServerConfig,
    traj: &Trajectory,
) -> (serde_json::Value, usize, Vec<serde_json::Value>) {
    let lib = &loaded.library;
    let recent = traj.points();
    let velocity = lib.predict_next_velocity(recent);
    let scores = lib.confirm_scores(recent);
    // Aggregate exp(log-match) weight per continuation cell over the
    // confirming patterns; BTreeMap keeps the output deterministic.
    let threshold_log = cfg.confirm_threshold.ln();
    let mut weights: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
    let mut confirming = 0usize;
    for (m, score) in lib.patterns().iter().zip(&scores) {
        let Some(lm) = score else { continue };
        if *lm < threshold_log {
            continue;
        }
        confirming += 1;
        let cells = m.pattern.cells();
        let next = cells[cells.len() - 1];
        *weights.entry(next.0).or_insert(0.0) += lm.exp();
    }
    let total: f64 = weights.values().sum();
    let distribution: Vec<serde_json::Value> = weights
        .iter()
        .map(|(cell, w)| {
            serde_json::json!({
                "cell": cell,
                "p": if total > 0.0 { w / total } else { 0.0 },
            })
        })
        .collect();
    let velocity_value = match velocity {
        Some(v) => serde_json::json!({ "x": v.x, "y": v.y }),
        None => serde_json::Value::Null,
    };
    (velocity_value, confirming, distribution)
}

/// `POST /v1/score`: scores over the posted trajectories under the
/// shared query schema — measure, index pruning, and pattern filter all
/// come from `options`. NMs are bit-identical to the library scorer.
fn v1_score_route(
    state: &ServeState,
    cfg: &ServerConfig,
    loaded: &Loaded,
    req: &Request,
) -> Response {
    let query = match QueryRequest::parse(&req.body) {
        Ok(q) => q,
        Err(resp) => return resp,
    };
    let data = query.dataset();
    let opts = query.options();
    let measure = match opts.measure() {
        Ok(m) => m,
        Err(msg) => return Response::error(400, &msg),
    };
    let (indices, batch) = match select_patterns(loaded, opts.patterns.as_deref()) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let subset_index;
    let index = match (opts.use_index(), opts.patterns.is_some()) {
        (false, _) => None,
        (true, false) => Some(&loaded.index),
        (true, true) => {
            subset_index = PatternIndex::build(&batch, &loaded.snapshot.grid);
            Some(&subset_index)
        }
    };
    let nms = score_with(state, cfg, loaded, &data, &batch, measure, index);
    QueryResponse::new("score")
        .field("trajectories", serde_json::json!(data.len()))
        .field("patterns", serde_json::json!(indices))
        .field("nms", serde_json::json!(nms))
        .into_response()
}

/// `POST /v1/match`: best-scoring pattern for the first posted
/// trajectory under the shared query schema.
fn v1_match_route(
    state: &ServeState,
    cfg: &ServerConfig,
    loaded: &Loaded,
    req: &Request,
) -> Response {
    let query = match QueryRequest::parse(&req.body) {
        Ok(q) => q,
        Err(resp) => return resp,
    };
    let data = query.dataset();
    let opts = query.options();
    let measure = match opts.measure() {
        Ok(m) => m,
        Err(msg) => return Response::error(400, &msg),
    };
    let Some(traj) = data.trajectories().first() else {
        return Response::error(400, "dataset holds no trajectory to match");
    };
    let single: Dataset = std::iter::once(traj.clone()).collect();
    let (indices, batch) = match select_patterns(loaded, opts.patterns.as_deref()) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let subset_index;
    let index = match (opts.use_index(), opts.patterns.is_some()) {
        (false, _) => None,
        (true, false) => Some(&loaded.index),
        (true, true) => {
            subset_index = PatternIndex::build(&batch, &loaded.snapshot.grid);
            Some(&subset_index)
        }
    };
    let nms = score_with(state, cfg, loaded, &single, &batch, measure, index);
    let best = best_match_value(&loaded.snapshot, &indices, &batch, &nms);
    QueryResponse::new("match")
        .field("trajectories", serde_json::json!(1usize))
        .field("patterns", serde_json::json!(indices))
        .field("nms", serde_json::json!(nms))
        .field("best", best)
        .into_response()
}

/// `POST /v1/predict`: next-cell distribution for the first posted
/// trajectory under the shared query schema.
fn v1_predict_route(cfg: &ServerConfig, loaded: &Loaded, req: &Request) -> Response {
    let query = match QueryRequest::parse(&req.body) {
        Ok(q) => q,
        Err(resp) => return resp,
    };
    let data = query.dataset();
    let Some(traj) = data.trajectories().first() else {
        return Response::error(400, "dataset holds no trajectory to predict from");
    };
    let (velocity, confirming, distribution) = predict_value(loaded, cfg, traj);
    QueryResponse::new("predict")
        .field("trajectories", serde_json::json!(1usize))
        .field("velocity", velocity)
        .field("confirming", serde_json::json!(confirming))
        .field("distribution", serde_json::Value::Array(distribution))
        .into_response()
}

/// `POST /score` (deprecated alias of `/v1/score`): NM of every
/// snapshot pattern over the posted dataset. Same scoring path as `/v1`
/// — bit-identical NMs — with the original response body.
fn score_route(state: &ServeState, cfg: &ServerConfig, loaded: &Loaded, req: &Request) -> Response {
    let data = match parse_dataset(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    let nms = score_with(
        state,
        cfg,
        loaded,
        &data,
        &loaded.patterns,
        trajpattern::Measure::Nm,
        Some(&loaded.index),
    );
    Response::json(
        200,
        serde_json::to_string_pretty(&serde_json::json!({
            "schema": "trajserve-score/v1",
            "trajectories": data.len(),
            "patterns": loaded.patterns.len(),
            "nms": nms,
        }))
        .expect("score response serializes"),
    )
}

/// `POST /match` (deprecated alias of `/v1/match`): best-NM snapshot
/// pattern for the first posted (possibly partial) trajectory, plus its
/// pattern-group assignment. Original response body.
fn match_route(state: &ServeState, cfg: &ServerConfig, loaded: &Loaded, req: &Request) -> Response {
    let data = match parse_dataset(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    let Some(traj) = data.trajectories().first() else {
        return Response::error(400, "dataset holds no trajectory to match");
    };
    let single: Dataset = std::iter::once(traj.clone()).collect();
    let nms = score_with(
        state,
        cfg,
        loaded,
        &single,
        &loaded.patterns,
        trajpattern::Measure::Nm,
        Some(&loaded.index),
    );
    let indices: Vec<usize> = (0..loaded.patterns.len()).collect();
    let best_value = best_match_value(&loaded.snapshot, &indices, &loaded.patterns, &nms);
    Response::json(
        200,
        serde_json::to_string_pretty(&serde_json::json!({
            "schema": "trajserve-match/v1",
            "patterns": loaded.patterns.len(),
            "nms": nms,
            "best": best_value,
        }))
        .expect("match response serializes"),
    )
}

/// `POST /predict` (deprecated alias of `/v1/predict`): next-cell
/// distribution for the first posted trajectory's recent window, via
/// the prediction crate's confirmation machinery. Original body.
fn predict_route(cfg: &ServerConfig, loaded: &Loaded, req: &Request) -> Response {
    let data = match parse_dataset(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    let Some(traj) = data.trajectories().first() else {
        return Response::error(400, "dataset holds no trajectory to predict from");
    };
    let (velocity_value, confirming, distribution) = predict_value(loaded, cfg, traj);
    Response::json(
        200,
        serde_json::to_string_pretty(&serde_json::json!({
            "schema": "trajserve-predict/v1",
            "velocity": velocity_value,
            "confirming": confirming,
            "distribution": distribution,
        }))
        .expect("predict response serializes"),
    )
}

fn accumulate_scorer(state: &ServeState, scorer: &Scorer<'_>, trajectories: usize) {
    let stats = scorer.stats();
    state
        .metrics
        .scorings
        .fetch_add(stats.scorings, Ordering::Relaxed);
    state
        .metrics
        .scored_trajectories
        .fetch_add(trajectories as u64, Ordering::Relaxed);
    state
        .metrics
        .scorer_degraded
        .fetch_add(stats.degraded_rescores, Ordering::Relaxed);
}

fn watch_loop(path: &Path, state: &ServeState, cfg: &ServerConfig, shutdown: &AtomicBool) {
    fn fingerprint(path: &Path) -> Option<(u64, Option<std::time::SystemTime>)> {
        std::fs::metadata(path)
            .ok()
            .map(|m| (m.len(), m.modified().ok()))
    }
    let mut last = fingerprint(path);
    let mut last_check = Instant::now();
    while !shutdown.load(Ordering::SeqCst) {
        thread::sleep(Duration::from_millis(25));
        if last_check.elapsed() < cfg.watch_interval {
            continue;
        }
        last_check = Instant::now();
        let now = fingerprint(path);
        if now == last || now.is_none() {
            continue; // unchanged, or mid-rename — try again next poll
        }
        match Snapshot::load(path)
            .map_err(|e| e.to_string())
            .and_then(|s| Loaded::build(s, cfg.confirm_threshold).map_err(|e| e.to_string()))
        {
            Ok(loaded) => {
                state.swap(Arc::new(loaded));
                state.metrics.reloads.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // Likely a half-written file: keep serving the old
                // snapshot. A completed rewrite changes the fingerprint
                // again and triggers a fresh attempt.
                state
                    .metrics
                    .reload_failures
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        last = now;
    }
}
