//! Deterministic cross-shard top-k fan-out merge.
//!
//! Each live shard maintains its own certified top-k (best NM first, the
//! exact order `trajpattern::certified_topk` emits: NM descending, ties
//! by `Pattern` ascending). A fan-out query merges those per-shard lists
//! into one ranked list of `(shard, pattern, nm)` entries *without*
//! rescoring anything — a k-way merge that repeatedly takes the best
//! head among the shard lists under the same comparator, with the fixed
//! shard fold order (sorted shard names) breaking exact `(nm, pattern)`
//! ties. Every step is a pure comparison on already-computed values, so
//! the merged ranking is bit-stable: the same shard states produce the
//! same bytes, no matter how the shards' updates interleaved.
//!
//! The same pattern may appear in several shards with different NMs;
//! those are distinct entries (each is that shard's exact score over its
//! own window), which is what a per-fleet/region/tenant deployment
//! wants — "where is this corridor hot, and how hot, per region".

use std::cmp::Ordering;
use trajpattern::MinedPattern;

/// One shard's certified top-k, in certified order (best NM first).
#[derive(Debug, Clone, Copy)]
pub struct ShardTopk<'a> {
    /// The shard's name.
    pub shard: &'a str,
    /// The shard's certified top-k, best first.
    pub patterns: &'a [MinedPattern],
}

/// One entry of the merged ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergedEntry<'a> {
    /// Which shard contributed the entry.
    pub shard: &'a str,
    /// The shard's mined pattern (exact NM over that shard's window).
    pub entry: &'a MinedPattern,
}

/// `true` when `a` strictly precedes `b` in the merged ranking: NM
/// descending, then `Pattern` ascending — exactly the
/// `certified_topk` comparator. Equal `(nm, pattern)` pairs are *not*
/// strictly better, so the k-way loop below keeps the earlier shard in
/// the fixed fold order.
fn strictly_better(a: &MinedPattern, b: &MinedPattern) -> bool {
    match b.nm.partial_cmp(&a.nm).expect("NM values are finite") {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => a.pattern < b.pattern,
    }
}

/// Merges per-shard certified top-k lists into the fleet-wide top `k`.
///
/// `shards` must be in the fixed fold order (sorted shard names — the
/// order [`crate::fleet::FleetState`] maintains); each list must be in
/// certified order. The result is deterministic down to the bits: ties
/// on `(nm, pattern)` resolve to the earliest shard in fold order.
pub fn merge_topk<'a>(shards: &[ShardTopk<'a>], k: usize) -> Vec<MergedEntry<'a>> {
    let mut heads = vec![0usize; shards.len()];
    let mut out = Vec::with_capacity(k.min(shards.iter().map(|s| s.patterns.len()).sum()));
    while out.len() < k {
        let mut best: Option<usize> = None;
        for (s, shard) in shards.iter().enumerate() {
            let Some(cand) = shard.patterns.get(heads[s]) else {
                continue;
            };
            best = match best {
                None => Some(s),
                Some(b) if strictly_better(cand, &shards[b].patterns[heads[b]]) => Some(s),
                Some(b) => Some(b),
            };
        }
        let Some(s) = best else { break };
        out.push(MergedEntry {
            shard: shards[s].shard,
            entry: &shards[s].patterns[heads[s]],
        });
        heads[s] += 1;
    }
    out
}

/// One shard's ranked query answer (probabilistic range / k-NN matches
/// in rank order, or pattern matches in NM order).
#[derive(Debug, Clone, Copy)]
pub struct ShardRanked<'a, T> {
    /// The shard's name.
    pub shard: &'a str,
    /// The shard's answer, best first.
    pub entries: &'a [T],
}

/// K-way merge of per-shard ranked answers under `strictly_better`,
/// with the fixed fold order (`shards` sorted by name) breaking exact
/// ties — the same discipline as [`merge_topk`], generalized over the
/// entry type. `k = usize::MAX` merges everything.
fn merge_ranked<'a, T: Copy>(
    shards: &[ShardRanked<'a, T>],
    k: usize,
    strictly_better: impl Fn(&T, &T) -> bool,
) -> Vec<(&'a str, T)> {
    let mut heads = vec![0usize; shards.len()];
    let total: usize = shards.iter().map(|s| s.entries.len()).sum();
    let mut out = Vec::with_capacity(k.min(total));
    while out.len() < k {
        let mut best: Option<usize> = None;
        for (s, shard) in shards.iter().enumerate() {
            let Some(cand) = shard.entries.get(heads[s]) else {
                continue;
            };
            best = match best {
                None => Some(s),
                Some(b) if strictly_better(cand, &shards[b].entries[heads[b]]) => Some(s),
                Some(b) => Some(b),
            };
        }
        let Some(s) = best else { break };
        out.push((shards[s].shard, shards[s].entries[heads[s]]));
        heads[s] += 1;
    }
    out
}

/// Merges per-shard probabilistic range / k-NN answers: probability
/// descending, then object id ascending (each shard's own rank order),
/// exact ties to the earlier shard in fold order. Bit-stable.
pub fn merge_range<'a>(
    shards: &[ShardRanked<'a, trajquery::RangeMatch>],
    k: usize,
) -> Vec<(&'a str, trajquery::RangeMatch)> {
    merge_ranked(shards, k, |a, b| {
        match b
            .prob
            .partial_cmp(&a.prob)
            .expect("probabilities are finite")
        {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a.id < b.id,
        }
    })
}

/// Merges per-shard live pattern-match answers: NM descending, then
/// object id ascending, exact ties to the earlier shard in fold order.
pub fn merge_matches<'a>(
    shards: &[ShardRanked<'a, trajquery::PatternMatch>],
) -> Vec<(&'a str, trajquery::PatternMatch)> {
    merge_ranked(shards, usize::MAX, |a, b| {
        match b.nm.partial_cmp(&a.nm).expect("retained NMs are finite") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a.id < b.id,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajgeo::CellId;
    use trajpattern::Pattern;
    use trajquery::{PatternMatch, RangeMatch};

    fn mined(cells: &[u32], nm: f64) -> MinedPattern {
        MinedPattern::new(
            Pattern::new(cells.iter().map(|&c| CellId(c)).collect()).unwrap(),
            nm,
        )
    }

    #[test]
    fn merges_by_nm_then_pattern_then_shard() {
        let a = [mined(&[1], -1.0), mined(&[2], -3.0)];
        let b = [mined(&[3], -2.0), mined(&[1], -3.0)];
        let shards = [
            ShardTopk {
                shard: "a",
                patterns: &a,
            },
            ShardTopk {
                shard: "b",
                patterns: &b,
            },
        ];
        let merged = merge_topk(&shards, 10);
        let order: Vec<(&str, f64)> = merged.iter().map(|m| (m.shard, m.entry.nm)).collect();
        // -1.0 (a), -2.0 (b), then the -3.0 tie: pattern [1] < [2], so
        // b's entry precedes a's.
        assert_eq!(
            order,
            vec![("a", -1.0), ("b", -2.0), ("b", -3.0), ("a", -3.0)]
        );
    }

    #[test]
    fn exact_ties_resolve_to_fold_order() {
        let same = [mined(&[7, 8], -5.5)];
        let shards = [
            ShardTopk {
                shard: "east",
                patterns: &same,
            },
            ShardTopk {
                shard: "west",
                patterns: &same,
            },
        ];
        let merged = merge_topk(&shards, 2);
        assert_eq!(merged[0].shard, "east");
        assert_eq!(merged[1].shard, "west");
    }

    #[test]
    fn truncates_to_k_and_handles_empty_shards() {
        let a = [mined(&[1], -1.0), mined(&[2], -2.0), mined(&[3], -3.0)];
        let shards = [
            ShardTopk {
                shard: "a",
                patterns: &a,
            },
            ShardTopk {
                shard: "empty",
                patterns: &[],
            },
        ];
        assert_eq!(merge_topk(&shards, 2).len(), 2);
        assert_eq!(merge_topk(&[], 5).len(), 0);
        // Merging equals sorting the union under the same comparator.
        let merged = merge_topk(&shards, 10);
        let nms: Vec<f64> = merged.iter().map(|m| m.entry.nm).collect();
        assert_eq!(nms, vec![-1.0, -2.0, -3.0]);
    }

    #[test]
    fn range_merge_ranks_prob_desc_then_id_then_shard() {
        let a = [
            RangeMatch { id: 4, prob: 0.9 },
            RangeMatch { id: 1, prob: 0.5 },
        ];
        let b = [
            RangeMatch { id: 0, prob: 0.7 },
            RangeMatch { id: 9, prob: 0.5 },
        ];
        let shards = [
            ShardRanked {
                shard: "east",
                entries: &a,
            },
            ShardRanked {
                shard: "west",
                entries: &b,
            },
        ];
        let merged = merge_range(&shards, usize::MAX);
        let order: Vec<(&str, u64, f64)> = merged.iter().map(|(s, m)| (*s, m.id, m.prob)).collect();
        // 0.5 ties rank by id (1 before 9) regardless of shard order.
        assert_eq!(
            order,
            vec![
                ("east", 4, 0.9),
                ("west", 0, 0.7),
                ("east", 1, 0.5),
                ("west", 9, 0.5),
            ]
        );
        // Truncation takes the global best k.
        assert_eq!(merge_range(&shards, 1).len(), 1);
        assert_eq!(merge_range(&shards, 1)[0].1.id, 4);
        // Exact (prob, id) ties resolve to the earlier shard.
        let same = [RangeMatch { id: 2, prob: 0.25 }];
        let tied = [
            ShardRanked {
                shard: "east",
                entries: &same,
            },
            ShardRanked {
                shard: "west",
                entries: &same,
            },
        ];
        let merged = merge_range(&tied, usize::MAX);
        assert_eq!(merged[0].0, "east");
        assert_eq!(merged[1].0, "west");
    }

    #[test]
    fn match_merge_ranks_nm_desc_then_id() {
        let a = [PatternMatch { id: 3, nm: -1.0 }];
        let b = [
            PatternMatch { id: 0, nm: -0.5 },
            PatternMatch { id: 7, nm: -1.0 },
        ];
        let shards = [
            ShardRanked {
                shard: "a",
                entries: &a,
            },
            ShardRanked {
                shard: "b",
                entries: &b,
            },
        ];
        let merged = merge_matches(&shards);
        let order: Vec<(&str, u64)> = merged.iter().map(|(s, m)| (*s, m.id)).collect();
        assert_eq!(order, vec![("b", 0), ("a", 3), ("b", 7)]);
    }
}
