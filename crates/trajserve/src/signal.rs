//! Minimal termination-signal plumbing: a process-wide flag the CLI
//! flips on `SIGTERM`/`SIGINT` so the server can drain and exit 0.
//!
//! The workspace has no `libc` dependency, so on Unix this binds the
//! C `signal(2)` entry point directly — the one place the crate allows
//! unsafe code. Elsewhere the installer is a no-op and shutdown relies
//! on [`ServerHandle::shutdown`](crate::ServerHandle).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;

static TERMINATE: OnceLock<Arc<AtomicBool>> = OnceLock::new();

fn flag() -> &'static Arc<AtomicBool> {
    TERMINATE.get_or_init(|| Arc::new(AtomicBool::new(false)))
}

/// The shared flag that becomes `true` once a termination signal
/// arrives (or [`request_termination`] is called).
pub fn termination_flag() -> Arc<AtomicBool> {
    Arc::clone(flag())
}

/// Flips the termination flag by hand — used by tests and by callers
/// that have their own signal story.
pub fn request_termination() {
    flag().store(true, Ordering::SeqCst);
}

/// Installs `SIGTERM` and `SIGINT` handlers that flip the termination
/// flag. Safe to call more than once. No-op on non-Unix targets.
pub fn install_termination_handler() {
    flag(); // ensure the flag exists before any signal can arrive
    sys::install();
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use super::*;

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> isize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: a relaxed atomic store.
        if let Some(f) = TERMINATE.get() {
            f.store(true, Ordering::Relaxed);
        }
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        // SAFETY: `signal(2)` with a handler that performs only an
        // atomic store is async-signal-safe; the handler type matches
        // the C prototype `void (*)(int)`.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_request_flips_shared_flag() {
        let f = termination_flag();
        install_termination_handler();
        request_termination();
        assert!(f.load(Ordering::SeqCst));
        // Reset so other tests in this process see a clean flag.
        f.store(false, Ordering::SeqCst);
    }
}
