//! Geodetic (lat/lon) coordinates → the planar engine.
//!
//! The mining engine, grids, and scoring kernel all work in a flat 2-D
//! space. Real vehicle feeds report WGS84 latitude/longitude. The bridge
//! is a *local equirectangular projection* anchored at a reference
//! origin: within the spans a trajectory workload covers (a metro area,
//! a transit network), the projection's planar distances agree with the
//! great-circle (Haversine) distances to well under a grid cell, so cell
//! sizes chosen in meters mean what they say — and every bit-identity
//! suite downstream of the decode stage is untouched, because after
//! projection the data is ordinary planar `f64`s.
//!
//! ```
//! use trajgeo::GeoProjection;
//!
//! // Anchor near Lower Manhattan, project a point ~1.3 km north-east.
//! let proj = GeoProjection::new(40.7128, -74.0060).unwrap();
//! let p = proj.project(40.7230, -73.9980);
//! let gc = GeoProjection::haversine_m(40.7128, -74.0060, 40.7230, -73.9980);
//! assert!((p.distance(trajgeo::Point2::ORIGIN) - gc).abs() / gc < 1e-4);
//! ```

use crate::point::Point2;

/// Mean Earth radius in meters (IUGG R₁).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A local equirectangular projection anchored at `(lat0, lon0)`.
///
/// Projected coordinates are meters east (`x`) and north (`y`) of the
/// origin: `x = R·cos(lat0)·Δλ`, `y = R·Δφ` (angles in radians). The
/// cos-latitude scaling makes east–west meters at the origin latitude
/// exact, which is what keeps planar cell sizes Haversine-consistent
/// over workload-sized extents (see [`GeoProjection::haversine_m`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoProjection {
    lat0: f64,
    lon0: f64,
    cos_lat0: f64,
}

impl GeoProjection {
    /// Creates a projection anchored at the reference origin. `None` if
    /// the origin is not a usable anchor: latitude outside ±89° (the
    /// east–west scale degenerates at the poles), longitude outside
    /// ±180°, or either non-finite.
    pub fn new(lat0: f64, lon0: f64) -> Option<GeoProjection> {
        if !(lat0.is_finite() && lon0.is_finite()) {
            return None;
        }
        if !((-89.0..=89.0).contains(&lat0) && (-180.0..=180.0).contains(&lon0)) {
            return None;
        }
        Some(GeoProjection {
            lat0,
            lon0,
            cos_lat0: lat0.to_radians().cos(),
        })
    }

    /// The reference origin `(lat0, lon0)` in degrees.
    pub fn origin(&self) -> (f64, f64) {
        (self.lat0, self.lon0)
    }

    /// Projects a geodetic position (degrees) to local planar meters.
    pub fn project(&self, lat: f64, lon: f64) -> Point2 {
        let x = EARTH_RADIUS_M * self.cos_lat0 * (lon - self.lon0).to_radians();
        let y = EARTH_RADIUS_M * (lat - self.lat0).to_radians();
        Point2::new(x, y)
    }

    /// Inverse of [`GeoProjection::project`]: planar meters back to
    /// geodetic degrees `(lat, lon)`.
    pub fn unproject(&self, p: Point2) -> (f64, f64) {
        let lat = self.lat0 + (p.y / EARTH_RADIUS_M).to_degrees();
        let lon = self.lon0 + (p.x / (EARTH_RADIUS_M * self.cos_lat0)).to_degrees();
        (lat, lon)
    }

    /// Great-circle distance between two geodetic positions (degrees),
    /// in meters, by the Haversine formula — the reference the planar
    /// projection is checked against.
    pub fn haversine_m(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
        let (p1, p2) = (lat1.to_radians(), lat2.to_radians());
        let dp = (lat2 - lat1).to_radians();
        let dl = (lon2 - lon1).to_radians();
        let a = (dp / 2.0).sin().powi(2) + p1.cos() * p2.cos() * (dl / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().atan2((1.0 - a).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_origins() {
        assert!(GeoProjection::new(40.0, -74.0).is_some());
        assert!(GeoProjection::new(90.0, 0.0).is_none());
        assert!(GeoProjection::new(-89.5, 0.0).is_none());
        assert!(GeoProjection::new(0.0, 181.0).is_none());
        assert!(GeoProjection::new(f64::NAN, 0.0).is_none());
    }

    #[test]
    fn origin_projects_to_planar_origin() {
        let proj = GeoProjection::new(51.5074, -0.1278).unwrap();
        let p = proj.project(51.5074, -0.1278);
        assert_eq!(p.x, 0.0);
        assert_eq!(p.y, 0.0);
    }

    #[test]
    fn round_trips_through_unproject() {
        let proj = GeoProjection::new(-36.8485, 174.7633).unwrap(); // Auckland
        for (lat, lon) in [
            (-36.8485, 174.7633),
            (-36.8000, 174.8000),
            (-36.9000, 174.7000),
        ] {
            let (rl, rn) = proj.unproject(proj.project(lat, lon));
            assert!((rl - lat).abs() < 1e-12, "{rl} vs {lat}");
            assert!((rn - lon).abs() < 1e-12, "{rn} vs {lon}");
        }
    }

    #[test]
    fn planar_distances_are_haversine_consistent_at_city_scale() {
        // Over a ~20 km metro extent the equirectangular error must stay
        // far below any sane cell size: < 0.1 % relative.
        let proj = GeoProjection::new(40.7128, -74.0060).unwrap();
        let pairs = [
            ((40.7128, -74.0060), (40.7580, -73.9700)),
            ((40.7000, -74.0200), (40.8000, -73.9500)),
            ((40.7128, -74.0060), (40.7130, -74.0058)),
        ];
        for ((la1, lo1), (la2, lo2)) in pairs {
            let planar = proj.project(la1, lo1).distance(proj.project(la2, lo2));
            let gc = GeoProjection::haversine_m(la1, lo1, la2, lo2);
            assert!(
                (planar - gc).abs() <= gc.max(1.0) * 1e-3,
                "planar {planar} vs haversine {gc}"
            );
        }
    }

    #[test]
    fn north_and_east_have_the_right_signs() {
        let proj = GeoProjection::new(0.0, 0.0).unwrap();
        let ne = proj.project(1.0, 1.0);
        assert!(ne.x > 0.0 && ne.y > 0.0);
        let sw = proj.project(-1.0, -1.0);
        assert!(sw.x < 0.0 && sw.y < 0.0);
        // One degree of latitude at the equator ≈ 111.2 km.
        assert!((ne.y - 111_194.9).abs() < 100.0, "{}", ne.y);
    }
}
