//! A small Fx-style hasher for integer-keyed maps on hot paths.
//!
//! The mining loop keys hash maps by cell ids and by short `u32` pattern
//! sequences; SipHash's HashDoS resistance buys nothing there and costs
//! real time (see the perf guide's Hashing chapter). This is the classic
//! "Fx" multiply-rotate hash used by rustc, implemented locally to avoid an
//! extra dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Hash map using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// Hash set using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic hasher (the rustc "Fx" algorithm).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the remainder.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&vec![1u32, 2, 3]), hash_of(&vec![1u32, 2, 3]));
    }

    #[test]
    fn discriminates_simple_inputs() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&vec![1u32, 2]), hash_of(&vec![2u32, 1]));
        // Length-extension style collisions are avoided by the remainder tag.
        assert_ne!(hash_of(&b"ab".to_vec()), hash_of(&b"ab\0".to_vec()));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<Vec<u32>, f64> = FxHashMap::default();
        m.insert(vec![1, 2, 3], -0.5);
        m.insert(vec![3, 2, 1], -0.25);
        assert_eq!(m.get(&vec![1, 2, 3]), Some(&-0.5));
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<u32> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i % 100);
        }
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn distribution_is_reasonable() {
        // Sequential keys should not all land in the same few buckets: check
        // that the low 8 bits of the hashes of 0..4096 take many values.
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            seen.insert(hash_of(&i) & 0xff);
        }
        assert!(seen.len() > 200, "only {} low-byte values", seen.len());
    }
}
