//! Geometry and numerics substrate for the TrajPattern reproduction.
//!
//! The TrajPattern paper (Yang & Hu, EDBT 2006) works in a continuous 2-D
//! space in which mobile objects travel. The location of an object at a
//! snapshot is never known exactly; it is a 2-D normal distribution around a
//! predicted mean. This crate provides everything the higher layers need to
//! talk about that space:
//!
//! - [`Point2`] / [`Vec2`]: plain 2-D points and displacement vectors.
//! - [`BBox`]: axis-aligned bounding boxes (the "space" objects travel in).
//! - [`Grid`] / [`CellId`]: the discretization of the space into small
//!   rectangular cells whose centers serve as pattern positions (§3.3 of the
//!   paper).
//! - [`stats`]: an `erf`-based normal CDF, 1-D/2-D normal distributions, the
//!   paper's `Prob(l, σ, p, δ)` kernel, and deterministic Box–Muller
//!   sampling.
//! - [`fxhash`]: a small Fx-style hasher for integer-keyed hash maps on hot
//!   paths.
//! - [`GeoProjection`]: a local equirectangular lat/lon → planar projection
//!   with Haversine-consistent distances, so geodetic feeds decode into the
//!   same flat space everything above works in.
//!
//! Everything here is `f64`-based, deterministic, and free of `unsafe`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbox;
pub mod fxhash;
pub mod geo;
pub mod grid;
pub mod index;
pub mod point;
pub mod stats;

pub use bbox::BBox;
pub use geo::GeoProjection;
pub use grid::{CellId, Grid, GridError};
pub use point::{Point2, Vec2};
