//! Normal distributions and the paper's `Prob(l, σ, p, δ)` kernel.
//!
//! §3.1: "the actual position of o follows the k-dimensional multivariate
//! normal distribution N_k(μ, Σ)" with a diagonal covariance whose marginal
//! standard deviation is `σ = U/c`. §3.3 then defines
//! `Prob(l, σ, p, δ)` — "the probability that the true location of the
//! object is within δ away from another location p". We realize the
//! δ-region as the axis-aligned square of half-width δ centered on `p`,
//! which factorizes into two 1-D interval probabilities (see DESIGN.md §5).

use super::erf::erfc;
use crate::point::Point2;
use rand::Rng;

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Standard normal CDF `Φ(x)`.
#[inline]
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * FRAC_1_SQRT_2)
}

/// `P(a < Z < b)` for a standard normal `Z`, computed to preserve relative
/// accuracy in the tails (a naive `Φ(b) − Φ(a)` cancels catastrophically
/// when both endpoints sit in the same tail).
pub fn std_normal_interval(a: f64, b: f64) -> f64 {
    if a >= b || a.is_nan() || b.is_nan() {
        return 0.0;
    }
    let p = if a >= 0.0 {
        // Right tail: erfc is small for both, difference keeps precision.
        0.5 * (erfc(a * FRAC_1_SQRT_2) - erfc(b * FRAC_1_SQRT_2))
    } else if b <= 0.0 {
        // Left tail: mirror.
        0.5 * (erfc(-b * FRAC_1_SQRT_2) - erfc(-a * FRAC_1_SQRT_2))
    } else {
        // Straddles zero: no cancellation danger.
        std_normal_cdf(b) - std_normal_cdf(a)
    };
    p.max(0.0)
}

/// A 1-D normal distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Normal1 {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (must be positive and finite).
    pub sigma: f64,
}

impl Normal1 {
    /// Creates a normal distribution; returns `None` unless `sigma > 0` and
    /// both parameters are finite.
    pub fn new(mean: f64, sigma: f64) -> Option<Normal1> {
        if mean.is_finite() && sigma.is_finite() && sigma > 0.0 {
            Some(Normal1 { mean, sigma })
        } else {
            None
        }
    }

    /// CDF at `x`.
    #[inline]
    pub fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mean) / self.sigma)
    }

    /// `P(lo < X < hi)`.
    #[inline]
    pub fn interval(&self, lo: f64, hi: f64) -> f64 {
        std_normal_interval((lo - self.mean) / self.sigma, (hi - self.mean) / self.sigma)
    }

    /// Draws a sample using the provided RNG (Box–Muller through
    /// [`sample_std_normal`]).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sigma * sample_std_normal(rng)
    }
}

/// The paper's `Prob(l, σ, p, δ)`: probability that the true location —
/// distributed as `N(l, σ²·I)` — lies within the square of half-width `δ`
/// centered at `p`.
///
/// Degenerate cases: `σ = 0` means the location is known exactly, so the
/// probability is 1 if `l` is within δ of `p` (L∞) and 0 otherwise;
/// `δ = 0` has probability 0 for any `σ > 0` (a continuous distribution
/// assigns no mass to a point).
pub fn prob_within_delta(l: Point2, sigma: f64, p: Point2, delta: f64) -> f64 {
    debug_assert!(sigma >= 0.0, "sigma must be non-negative");
    debug_assert!(delta >= 0.0, "delta must be non-negative");
    if sigma <= 0.0 {
        return if l.linf_distance(p) <= delta {
            1.0
        } else {
            0.0
        };
    }
    let px = std_normal_interval((p.x - delta - l.x) / sigma, (p.x + delta - l.x) / sigma);
    let py = std_normal_interval((p.y - delta - l.y) / sigma, (p.y + delta - l.y) / sigma);
    px * py
}

/// One draw from the standard normal via Box–Muller.
///
/// Implemented locally (rather than via `rand_distr`) to keep the
/// dependency set to the pre-approved list; the polar rejection variant is
/// avoided so the number of RNG draws per sample is fixed (2), which makes
/// generator output reproducible across refactors.
pub fn sample_std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_reference_points() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_normal_cdf(1.0) - 0.841_344_746_07).abs() < 2e-7);
        assert!((std_normal_cdf(-1.96) - 0.024_997_895_15).abs() < 2e-7);
    }

    #[test]
    fn interval_tail_has_relative_accuracy() {
        // P(4 < Z < 5) = Φ(5) − Φ(4) ≈ 3.1384590609e-5 − ... compute:
        // erfc(4/√2)/2 − erfc(5/√2)/2 ≈ 3.1671241833e-5 − 2.866515719e-7
        let p = std_normal_interval(4.0, 5.0);
        let want = 3.138_458_926e-5;
        assert!(((p - want) / want).abs() < 1e-5, "p = {p}");
    }

    #[test]
    fn interval_is_symmetric_and_ordered() {
        let p1 = std_normal_interval(-1.0, 2.0);
        let p2 = std_normal_interval(-2.0, 1.0);
        assert!((p1 - p2).abs() < 1e-12);
        assert_eq!(std_normal_interval(2.0, 1.0), 0.0);
        assert_eq!(std_normal_interval(1.0, 1.0), 0.0);
    }

    #[test]
    fn three_sigma_rule() {
        let n = Normal1::new(10.0, 2.0).unwrap();
        let p = n.interval(10.0 - 6.0, 10.0 + 6.0); // ±3σ
        assert!((p - 0.9973).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn normal1_rejects_bad_parameters() {
        assert!(Normal1::new(0.0, 0.0).is_none());
        assert!(Normal1::new(0.0, -1.0).is_none());
        assert!(Normal1::new(f64::NAN, 1.0).is_none());
        assert!(Normal1::new(0.0, f64::INFINITY).is_none());
    }

    #[test]
    fn prob_within_delta_basic_properties() {
        let l = Point2::new(0.5, 0.5);
        // Probability mass concentrates as delta grows.
        let p_small = prob_within_delta(l, 0.1, l, 0.05);
        let p_large = prob_within_delta(l, 0.1, l, 0.5);
        assert!(p_small > 0.0 && p_small < p_large && p_large <= 1.0);
        // Moving the pattern position away decreases probability.
        let far = Point2::new(0.9, 0.9);
        assert!(prob_within_delta(l, 0.1, far, 0.05) < p_small);
        // δ = 0 carries no mass under a continuous distribution.
        assert_eq!(prob_within_delta(l, 0.1, l, 0.0), 0.0);
    }

    #[test]
    fn prob_within_delta_degenerate_sigma() {
        let l = Point2::new(0.2, 0.2);
        assert_eq!(prob_within_delta(l, 0.0, Point2::new(0.25, 0.2), 0.1), 1.0);
        assert_eq!(prob_within_delta(l, 0.0, Point2::new(0.5, 0.2), 0.1), 0.0);
    }

    #[test]
    fn prob_within_delta_is_symmetric_in_l_and_p() {
        let a = Point2::new(0.1, 0.4);
        let b = Point2::new(0.3, 0.2);
        let p1 = prob_within_delta(a, 0.15, b, 0.07);
        let p2 = prob_within_delta(b, 0.15, a, 0.07);
        assert!((p1 - p2).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = Normal1::new(3.0, 2.0).unwrap();
        let m = 20_000;
        let samples: Vec<f64> = (0..m).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / m as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / m as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let n = Normal1::new(0.0, 1.0).unwrap();
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..8).map(|_| n.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..8).map(|_| n.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
