//! Error function and complementary error function.
//!
//! The match measure multiplies many per-snapshot probabilities and then
//! takes logs, so *relative* accuracy in the tails matters: a pattern
//! position three cells away from a trajectory still contributes a real,
//! small probability, and `log` amplifies any absolute error there. We use
//! the classic rational Chebyshev fit for `erfc` (fractional error below
//! 1.2e-7 everywhere), which keeps tail values meaningful down to the
//! `MIN_PROB` floor used by the mining layer.

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Fractional error is below `1.2e-7` for all inputs.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Horner evaluation of the Chebyshev polynomial in t.
    let poly = -1.265_512_23
        + t * (1.000_023_68
            + t * (0.374_091_96
                + t * (0.096_784_18
                    + t * (-0.186_288_06
                        + t * (0.278_868_07
                            + t * (-1.135_203_98
                                + t * (1.488_515_87 + t * (-0.822_152_23 + t * 0.170_872_77))))))));
    let ans = t * (-z * z + poly).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from standard tables / high-precision evaluation.
    const CASES: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.5, 0.520_499_877_8),
        (1.0, 0.842_700_792_9),
        (1.5, 0.966_105_146_5),
        (2.0, 0.995_322_265_0),
        (3.0, 0.999_977_909_5),
    ];

    #[test]
    fn erf_matches_reference() {
        for &(x, want) in CASES {
            assert!(
                (erf(x) - want).abs() < 2e-7,
                "erf({x}) = {} != {want}",
                erf(x)
            );
            assert!((erf(-x) + want).abs() < 2e-7, "erf is odd");
        }
    }

    #[test]
    fn erfc_tail_relative_accuracy() {
        // erfc(3) = 2.209049699858544e-5, erfc(5) = 1.5374597944280351e-12
        let cases = [
            (3.0, 2.209_049_699_858_544e-5),
            (5.0, 1.537_459_794_428_035e-12),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            assert!(
                ((got - want) / want).abs() < 1e-6,
                "erfc({x}) = {got} vs {want}"
            );
        }
    }

    #[test]
    fn erfc_symmetry() {
        for x in [-2.5, -1.0, -0.3, 0.0, 0.7, 1.9] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 3e-7);
        }
    }

    #[test]
    fn erfc_limits() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!(erfc(30.0) >= 0.0);
        assert!(erfc(30.0) < 1e-100);
        assert!((erfc(-30.0) - 2.0).abs() < 1e-6);
        assert!(erfc(f64::NAN).is_nan());
    }

    #[test]
    fn erf_monotone_on_sample_points() {
        let mut prev = f64::NEG_INFINITY;
        let mut x = -6.0;
        while x <= 6.0 {
            let v = erf(x);
            assert!(v >= prev - 1e-9, "erf not monotone at {x}");
            prev = v;
            x += 0.01;
        }
    }
}
