//! Statistical kernels: `erf`, the normal CDF, the paper's
//! `Prob(l, σ, p, δ)` measure, and deterministic normal sampling.

pub mod erf;
pub mod normal;

pub use erf::{erf, erfc};
pub use normal::{
    prob_within_delta, sample_std_normal, std_normal_cdf, std_normal_interval, Normal1,
};
