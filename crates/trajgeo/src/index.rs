//! Spatial indexing over axis-aligned rectangles: a bulk-loaded STR
//! R-tree ([`RTree`]) plus a geohash-bucket layer, combined in
//! [`HybridIndex`].
//!
//! The higher layers index *pattern bounding boxes* (the rectangle
//! enclosing a pattern's cell centers) and query with *trajectory
//! corridors* (the rectangle enclosing a trajectory's snapshot means,
//! expanded by the `δ + 8σ` probability-corridor radius). A pattern whose
//! rectangle misses the corridor rectangle provably scores the
//! probability floor at every position, so index misses can be resolved
//! analytically — which is why the query results here only ever need to
//! be a *conservative superset* of the truly-near entries, and both
//! structures return exactly the set of stored rectangles intersecting
//! the query (sorted, deduplicated — deterministic for any build order).
//!
//! Small rectangles (at most one bucket wide) live in a flat geohash
//! bucket grid — O(1) insertion locality, cheap point-ish queries, and
//! the common case for patterns, which span a handful of adjacent cells.
//! Rectangles wider than a bucket go to the R-tree, which handles the
//! long-and-thin minority without smearing them across many buckets.

use crate::fxhash::FxHashMap;
use crate::Point2;

/// Fan-out of R-tree nodes (leaves and inner nodes alike).
const NODE_CAPACITY: usize = 8;

/// An axis-aligned rectangle. Unlike [`crate::BBox`], degenerate extents
/// (points, segments) are first-class: a singular pattern's bounding box
/// is a point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point2,
    /// Upper-right corner (componentwise ≥ `min`).
    pub max: Point2,
}

impl Rect {
    /// A rectangle from its corners (`min` must be componentwise ≤ `max`;
    /// debug-asserted).
    pub fn new(min: Point2, max: Point2) -> Rect {
        debug_assert!(min.x <= max.x && min.y <= max.y, "inverted rect");
        Rect { min, max }
    }

    /// The degenerate rectangle holding exactly `p`.
    pub fn point(p: Point2) -> Rect {
        Rect { min: p, max: p }
    }

    /// The smallest rectangle containing both operands.
    pub fn union(self, other: Rect) -> Rect {
        Rect {
            min: Point2::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point2::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// This rectangle grown by `r` on every side (the Minkowski sum with
    /// an L∞ ball — exactly the shape of a probability corridor around a
    /// bounding box of snapshot means).
    pub fn expanded(self, r: f64) -> Rect {
        debug_assert!(r >= 0.0);
        Rect {
            min: Point2::new(self.min.x - r, self.min.y - r),
            max: Point2::new(self.max.x + r, self.max.y + r),
        }
    }

    /// Whether the closed rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Extent along x (0 for degenerate rectangles).
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Extent along y.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// The center point.
    pub fn center(&self) -> Point2 {
        Point2::new(
            0.5 * (self.min.x + self.max.x),
            0.5 * (self.min.y + self.max.y),
        )
    }
}

/// A static, bulk-loaded R-tree over `(Rect, id)` entries, packed with
/// the Sort-Tile-Recursive (STR) heuristic: entries are sorted into
/// vertical slabs by center x, each slab sorted by center y, and chunked
/// into leaves of [`NODE_CAPACITY`]; upper levels pack consecutive nodes
/// the same way. Queries return every stored id whose rectangle
/// intersects the probe, in ascending id order.
#[derive(Debug, Clone)]
pub struct RTree {
    /// Leaf entries in STR order.
    entries: Vec<(Rect, u32)>,
    /// Bottom-up node levels: `(bbox, start, end)` ranges index the level
    /// below (level 0 indexes `entries`). The last level is the root row.
    levels: Vec<Vec<(Rect, u32, u32)>>,
}

impl RTree {
    /// Bulk-loads the tree. Entry ids need not be unique or dense; the
    /// build is deterministic for any input order.
    pub fn build(mut entries: Vec<(Rect, u32)>) -> RTree {
        if entries.is_empty() {
            return RTree {
                entries,
                levels: Vec::new(),
            };
        }
        // Total order even with coincident centers: id breaks ties.
        let key_x = |e: &(Rect, u32)| (e.0.center().x, e.1);
        let key_y = |e: &(Rect, u32)| (e.0.center().y, e.1);
        let cmp = |a: (f64, u32), b: (f64, u32)| {
            a.0.partial_cmp(&b.0)
                .expect("finite rect coordinates")
                .then(a.1.cmp(&b.1))
        };
        entries.sort_unstable_by(|a, b| cmp(key_x(a), key_x(b)));
        let n = entries.len();
        let leaves = n.div_ceil(NODE_CAPACITY);
        let slabs = (leaves as f64).sqrt().ceil() as usize;
        let per_slab = n.div_ceil(slabs.max(1));
        for slab in entries.chunks_mut(per_slab) {
            slab.sort_unstable_by(|a, b| cmp(key_y(a), key_y(b)));
        }

        let enclose = |rects: &mut dyn Iterator<Item = Rect>| -> Rect {
            let first = rects.next().expect("non-empty node");
            rects.fold(first, Rect::union)
        };
        let mut levels: Vec<Vec<(Rect, u32, u32)>> = Vec::new();
        let mut start = 0usize;
        let mut level: Vec<(Rect, u32, u32)> = Vec::with_capacity(leaves);
        while start < n {
            let end = (start + NODE_CAPACITY).min(n);
            let rect = enclose(&mut entries[start..end].iter().map(|e| e.0));
            level.push((rect, start as u32, end as u32));
            start = end;
        }
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(NODE_CAPACITY));
            let mut start = 0usize;
            while start < level.len() {
                let end = (start + NODE_CAPACITY).min(level.len());
                let rect = enclose(&mut level[start..end].iter().map(|e| e.0));
                next.push((rect, start as u32, end as u32));
                start = end;
            }
            levels.push(level);
            level = next;
        }
        levels.push(level);
        RTree { entries, levels }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ids of every entry intersecting `rect`, ascending and deduplicated.
    pub fn query(&self, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_into(rect, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// [`RTree::query`] into a caller-owned buffer, without the final
    /// sort/dedup — the hybrid index merges several sources first.
    fn query_into(&self, rect: &Rect, out: &mut Vec<u32>) {
        if self.entries.is_empty() {
            return;
        }
        let top = self.levels.len() - 1;
        let mut stack: Vec<(usize, usize)> = self.levels[top]
            .iter()
            .enumerate()
            .filter(|(_, node)| rect.intersects(&node.0))
            .map(|(i, _)| (top, i))
            .collect();
        while let Some((lvl, i)) = stack.pop() {
            let (_, s, e) = self.levels[lvl][i];
            if lvl == 0 {
                for (r, id) in &self.entries[s as usize..e as usize] {
                    if rect.intersects(r) {
                        out.push(*id);
                    }
                }
            } else {
                for (j, node) in self.levels[lvl - 1][s as usize..e as usize]
                    .iter()
                    .enumerate()
                {
                    if rect.intersects(&node.0) {
                        stack.push((lvl - 1, s as usize + j));
                    }
                }
            }
        }
    }
}

/// Interleaves the low 32 bits of `v` with zeros (Morton/geohash spread).
fn spread(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// The geohash (Morton) key of bucket `(ix, iy)` — x bits even, y odd.
fn geohash(ix: u32, iy: u32) -> u64 {
    spread(ix) | (spread(iy) << 1)
}

/// The R-tree / geohash-bucket hybrid: a flat bucket grid (keyed by
/// geohash code) over the entries' joint bounding box for rectangles at
/// most one bucket wide, and an [`RTree`] for the rest. See the module
/// docs for why this split fits pattern bounding boxes.
#[derive(Debug, Clone)]
pub struct HybridIndex {
    buckets: FxHashMap<u64, Vec<(Rect, u32)>>,
    origin: Point2,
    /// Bucket side length (> 0).
    size: f64,
    /// Buckets per axis.
    axis: u32,
    tree: RTree,
    len: usize,
}

impl HybridIndex {
    /// Builds the hybrid index. Deterministic for any input order; entry
    /// ids need not be unique or dense.
    pub fn build(entries: Vec<(Rect, u32)>) -> HybridIndex {
        let len = entries.len();
        let bounds = entries
            .iter()
            .map(|e| e.0)
            .reduce(Rect::union)
            .unwrap_or(Rect::point(Point2::new(0.0, 0.0)));
        // ~1 entry per bucket on a square grid, within sane limits.
        let axis = ((len as f64).sqrt().ceil() as u32).clamp(4, 64);
        let raw = (bounds.width().max(bounds.height())) / axis as f64;
        let size = if raw.is_finite() && raw > 0.0 {
            raw
        } else {
            1.0
        };

        let mut buckets: FxHashMap<u64, Vec<(Rect, u32)>> = FxHashMap::default();
        let mut oversized = Vec::new();
        let clamp = |v: f64| (v.max(0.0).min((axis - 1) as f64)) as u32;
        for (rect, id) in entries {
            if rect.width() <= size && rect.height() <= size {
                let ix0 = clamp((rect.min.x - bounds.min.x) / size);
                let ix1 = clamp((rect.max.x - bounds.min.x) / size);
                let iy0 = clamp((rect.min.y - bounds.min.y) / size);
                let iy1 = clamp((rect.max.y - bounds.min.y) / size);
                for iy in iy0..=iy1 {
                    for ix in ix0..=ix1 {
                        buckets.entry(geohash(ix, iy)).or_default().push((rect, id));
                    }
                }
            } else {
                oversized.push((rect, id));
            }
        }
        HybridIndex {
            buckets,
            origin: bounds.min,
            size,
            axis,
            tree: RTree::build(oversized),
            len,
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ids of every entry intersecting `rect`, ascending and
    /// deduplicated — identical to what a plain [`RTree`] over the same
    /// entries returns.
    pub fn query(&self, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.tree.query_into(rect, &mut out);
        if !self.buckets.is_empty() {
            let clamp = |v: f64| (v.max(0.0).min((self.axis - 1) as f64)) as u32;
            let ix0 = clamp((rect.min.x - self.origin.x) / self.size);
            let ix1 = clamp((rect.max.x - self.origin.x) / self.size);
            let iy0 = clamp((rect.min.y - self.origin.y) / self.size);
            let iy1 = clamp((rect.max.y - self.origin.y) / self.size);
            for iy in iy0..=iy1 {
                for ix in ix0..=ix1 {
                    if let Some(bucket) = self.buckets.get(&geohash(ix, iy)) {
                        for (r, id) in bucket {
                            if rect.intersects(r) {
                                out.push(*id);
                            }
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    fn brute(entries: &[(Rect, u32)], probe: &Rect) -> Vec<u32> {
        let mut out: Vec<u32> = entries
            .iter()
            .filter(|(r, _)| probe.intersects(r))
            .map(|(_, id)| *id)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn rect_intersections_are_closed() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        assert!(a.intersects(&rect(1.0, 1.0, 2.0, 2.0)), "corner touch");
        assert!(a.intersects(&Rect::point(Point2::new(0.5, 0.5))));
        assert!(!a.intersects(&rect(1.1, 0.0, 2.0, 1.0)));
        let degenerate = Rect::point(Point2::new(3.0, 3.0));
        assert!(degenerate.intersects(&degenerate));
    }

    #[test]
    fn empty_indexes_answer_empty() {
        assert!(RTree::build(Vec::new())
            .query(&rect(0.0, 0.0, 9.0, 9.0))
            .is_empty());
        let h = HybridIndex::build(Vec::new());
        assert!(h.is_empty());
        assert!(h.query(&rect(0.0, 0.0, 9.0, 9.0)).is_empty());
    }

    #[test]
    fn finds_entries_across_node_boundaries() {
        // More entries than one node so every level of the tree is real.
        let entries: Vec<(Rect, u32)> = (0..100)
            .map(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                (rect(x, y, x + 0.5, y + 0.5), i)
            })
            .collect();
        let tree = RTree::build(entries.clone());
        let hybrid = HybridIndex::build(entries.clone());
        assert_eq!(tree.len(), 100);
        assert_eq!(hybrid.len(), 100);
        for probe in [
            rect(2.2, 3.2, 4.1, 5.1),
            rect(-5.0, -5.0, -1.0, -1.0),
            rect(0.0, 0.0, 9.5, 9.5),
            Rect::point(Point2::new(5.25, 5.25)),
        ] {
            let want = brute(&entries, &probe);
            assert_eq!(tree.query(&probe), want);
            assert_eq!(hybrid.query(&probe), want);
        }
    }

    #[test]
    fn oversized_rects_go_through_the_tree_side() {
        let mut entries: Vec<(Rect, u32)> = (0..30)
            .map(|i| (Rect::point(Point2::new(i as f64, i as f64)), i))
            .collect();
        // A long thin rectangle spanning the whole domain.
        entries.push((rect(0.0, 10.0, 29.0, 10.1), 99));
        let hybrid = HybridIndex::build(entries.clone());
        let probe = rect(14.0, 9.0, 15.0, 11.0);
        assert_eq!(hybrid.query(&probe), brute(&entries, &probe));
    }

    proptest! {
        #[test]
        fn hybrid_and_rtree_agree_with_brute_force(
            raw in prop::collection::vec(
                (0.0f64..8.0, 0.0f64..8.0, 0.0f64..3.0, 0.0f64..3.0), 0..80),
            probe in (-2.0f64..10.0, -2.0f64..10.0, 0.0f64..6.0, 0.0f64..6.0),
        ) {
            let entries: Vec<(Rect, u32)> = raw
                .iter()
                .enumerate()
                .map(|(i, &(x, y, w, h))| (rect(x, y, x + w, y + h), i as u32))
                .collect();
            let probe = rect(probe.0, probe.1, probe.0 + probe.2, probe.1 + probe.3);
            let want = brute(&entries, &probe);
            prop_assert_eq!(RTree::build(entries.clone()).query(&probe), want.clone());
            prop_assert_eq!(HybridIndex::build(entries).query(&probe), want);
        }
    }
}
