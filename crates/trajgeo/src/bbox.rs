//! Axis-aligned bounding boxes.
//!
//! The paper assumes "the objects are traveling in a square" (§6.1); a
//! [`BBox`] describes that region and is the domain that a [`crate::Grid`]
//! discretizes. Boxes are also used by the data generators to keep simulated
//! objects inside the space (reflecting walls).

use crate::point::Point2;

/// A non-degenerate axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BBox {
    min: Point2,
    max: Point2,
}

impl BBox {
    /// Creates a box from two opposite corners. Returns `None` if the box
    /// would be degenerate (zero or negative extent on either axis) or if
    /// any coordinate is non-finite.
    pub fn new(min: Point2, max: Point2) -> Option<BBox> {
        if !min.is_finite() || !max.is_finite() || max.x <= min.x || max.y <= min.y {
            None
        } else {
            Some(BBox { min, max })
        }
    }

    /// The unit square `[0,1] × [0,1]` — the default space used throughout
    /// the experiments (the paper normalizes δ and the grid size to fractions
    /// of "the side of the space").
    pub fn unit() -> BBox {
        BBox {
            min: Point2::ORIGIN,
            max: Point2::new(1.0, 1.0),
        }
    }

    /// A square `[0,side] × [0,side]`. Panics if `side` is not positive
    /// and finite.
    pub fn square(side: f64) -> BBox {
        BBox::new(Point2::ORIGIN, Point2::new(side, side))
            .expect("BBox::square requires a positive, finite side")
    }

    /// Lower-left corner.
    #[inline]
    pub fn min(&self) -> Point2 {
        self.min
    }

    /// Upper-right corner.
    #[inline]
    pub fn max(&self) -> Point2 {
        self.max
    }

    /// Horizontal extent.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Vertical extent.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point2 {
        self.min.lerp(self.max, 0.5)
    }

    /// Whether `p` lies inside the box (inclusive on all edges).
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` to the closest point inside the box.
    #[inline]
    pub fn clamp(&self, p: Point2) -> Point2 {
        Point2::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Reflects `p` back into the box as if the edges were mirrors. Used by
    /// the data generators so that simulated objects bounce off the walls of
    /// the space instead of escaping it. Points already inside are returned
    /// unchanged.
    pub fn reflect(&self, p: Point2) -> Point2 {
        Point2::new(
            reflect_axis(p.x, self.min.x, self.max.x),
            reflect_axis(p.y, self.min.y, self.max.y),
        )
    }

    /// Smallest box containing every point in `points`, or `None` if the
    /// input is empty or degenerate (all points collinear on an axis). A
    /// tiny margin is added so that boundary points are strictly inside.
    pub fn enclosing(points: impl IntoIterator<Item = Point2>) -> Option<BBox> {
        let mut min = Point2::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        let mut any = false;
        for p in points {
            if !p.is_finite() {
                continue;
            }
            any = true;
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        if !any {
            return None;
        }
        // Guarantee non-degeneracy with a relative margin.
        let span = (max.x - min.x).max(max.y - min.y).max(1e-9);
        let margin = span * 1e-6 + 1e-12;
        BBox::new(
            Point2::new(min.x - margin, min.y - margin),
            Point2::new(max.x + margin, max.y + margin),
        )
    }
}

/// 1-D mirror reflection of `x` into `[lo, hi]`.
fn reflect_axis(x: f64, lo: f64, hi: f64) -> f64 {
    let span = hi - lo;
    if span <= 0.0 || !x.is_finite() {
        return lo;
    }
    // Map to a sawtooth with period 2*span, then fold.
    let mut t = (x - lo) % (2.0 * span);
    if t < 0.0 {
        t += 2.0 * span;
    }
    if t > span {
        t = 2.0 * span - t;
    }
    lo + t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate() {
        assert!(BBox::new(Point2::new(0.0, 0.0), Point2::new(0.0, 1.0)).is_none());
        assert!(BBox::new(Point2::new(1.0, 0.0), Point2::new(0.0, 1.0)).is_none());
        assert!(BBox::new(Point2::new(0.0, 0.0), Point2::new(f64::NAN, 1.0)).is_none());
    }

    #[test]
    fn contains_and_clamp() {
        let b = BBox::square(10.0);
        assert!(b.contains(Point2::new(5.0, 5.0)));
        assert!(b.contains(Point2::new(0.0, 10.0))); // boundary inclusive
        assert!(!b.contains(Point2::new(-0.1, 5.0)));
        assert_eq!(b.clamp(Point2::new(-3.0, 12.0)), Point2::new(0.0, 10.0));
    }

    #[test]
    fn reflect_folds_back_inside() {
        let b = BBox::square(1.0);
        let r = b.reflect(Point2::new(1.2, -0.3));
        assert!(b.contains(r));
        assert!((r.x - 0.8).abs() < 1e-12);
        assert!((r.y - 0.3).abs() < 1e-12);
        // Inside points are unchanged.
        let p = Point2::new(0.4, 0.6);
        assert_eq!(b.reflect(p), p);
    }

    #[test]
    fn reflect_handles_multiple_periods() {
        let b = BBox::square(1.0);
        let r = b.reflect(Point2::new(3.4, -2.6));
        assert!(b.contains(r));
        // 3.4 mod 2 = 1.4 -> fold -> 0.6 ; -2.6 mod 2 = 1.4 -> fold -> 0.6
        assert!((r.x - 0.6).abs() < 1e-12);
        assert!((r.y - 0.6).abs() < 1e-12);
    }

    #[test]
    fn enclosing_covers_all_points() {
        let pts = [
            Point2::new(1.0, 2.0),
            Point2::new(-3.0, 4.0),
            Point2::new(2.0, -1.0),
        ];
        let b = BBox::enclosing(pts).unwrap();
        for p in pts {
            assert!(b.contains(p));
        }
        assert!(BBox::enclosing(std::iter::empty()).is_none());
    }

    #[test]
    fn enclosing_single_point_is_nondegenerate() {
        let b = BBox::enclosing([Point2::new(5.0, 5.0)]).unwrap();
        assert!(b.width() > 0.0 && b.height() > 0.0);
        assert!(b.contains(Point2::new(5.0, 5.0)));
    }

    #[test]
    fn geometry_accessors() {
        let b = BBox::new(Point2::new(1.0, 2.0), Point2::new(4.0, 8.0)).unwrap();
        assert_eq!(b.width(), 3.0);
        assert_eq!(b.height(), 6.0);
        assert_eq!(b.center(), Point2::new(2.5, 5.0));
    }
}
