//! 2-D points and displacement vectors.
//!
//! The paper's trajectories live in a 2-D plane (longitude/latitude for the
//! bus data, a square region for the synthetic data). [`Point2`] is an
//! absolute location; [`Vec2`] is a displacement (and doubles as a velocity,
//! since snapshots are one time-unit apart — §3.2 transforms location
//! trajectories into velocity trajectories by differencing).

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An absolute location in the 2-D plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement between two locations; also used for velocities.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point2 {
    /// Origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: Point2) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the `sqrt` on hot
    /// comparison paths).
    #[inline]
    pub fn distance_sq(&self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Chebyshev (L∞) distance to `other`. Pattern-group similarity (§3.4)
    /// and the indifference region both use per-axis distances, for which
    /// the L∞ norm is the natural choice.
    #[inline]
    pub fn linf_distance(&self, other: Point2) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(&self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Returns true if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec2 {
    /// Zero displacement.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Vector from polar coordinates: `r` at angle `theta` radians
    /// (counter-clockwise from the positive x-axis).
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Vec2 {
        Vec2::new(r * theta.cos(), r * theta.sin())
    }

    /// Angle in radians in `(-π, π]`, counter-clockwise from +x.
    #[inline]
    pub fn angle(&self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Unit vector in the same direction, or `None` for (near-)zero vectors.
    pub fn normalized(&self) -> Option<Vec2> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(Vec2::new(self.x / n, self.y / n))
        }
    }
}

impl Sub for Point2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl AddAssign<Vec2> for Point2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vec2> for Point2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_vector_arithmetic_round_trips() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(4.0, 6.0);
        let d = b - a;
        assert_eq!(d, Vec2::new(3.0, 4.0));
        assert_eq!(a + d, b);
        assert_eq!(b - d, a);
    }

    #[test]
    fn distances() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(b) - 25.0).abs() < 1e-12);
        assert!((a.linf_distance(b) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn polar_round_trip() {
        let v = Vec2::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((v.norm() - 2.0).abs() < 1e-12);
        assert!((v.angle() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::new(0.0, 10.0);
        let b = Point2::new(10.0, 0.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point2::new(5.0, 5.0));
    }

    #[test]
    fn normalized_zero_vector_is_none() {
        assert!(Vec2::ZERO.normalized().is_none());
        let v = Vec2::new(0.0, 3.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dot_product() {
        assert_eq!(Vec2::new(1.0, 2.0).dot(Vec2::new(3.0, 4.0)), 11.0);
        // Orthogonal vectors.
        assert_eq!(Vec2::new(1.0, 0.0).dot(Vec2::new(0.0, 5.0)), 0.0);
    }

    #[test]
    fn scalar_ops() {
        let v = Vec2::new(2.0, -4.0);
        assert_eq!(v * 0.5, Vec2::new(1.0, -2.0));
        assert_eq!(v / 2.0, Vec2::new(1.0, -2.0));
        assert_eq!(-v, Vec2::new(-2.0, 4.0));
    }
}
