//! Discretization of the space into grid cells (§3.3 of the paper).
//!
//! "To expedite the mining process, we discretize the space into small
//! regions and only the centers of these regions may serve as the positions
//! in a pattern. Let `G_x`, `G_y` be the grid size on a 2-dimensional
//! space." — a [`Grid`] partitions a [`BBox`] into `nx × ny` equal cells;
//! each cell is identified by a dense [`CellId`] in `0..nx*ny` (row-major).
//!
//! Pattern positions throughout the reproduction are `CellId`s; geometry
//! (cell centers, neighbourhoods) is recovered through the grid.

use crate::bbox::BBox;
use crate::point::Point2;
use std::fmt;

/// Identifier of a grid cell: a dense row-major index in `0..grid.num_cells()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct CellId(pub u32);

impl CellId {
    /// The raw index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Errors building a [`Grid`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// `nx` or `ny` was zero.
    ZeroCells,
    /// The total number of cells exceeds `u32::MAX`.
    TooManyCells,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::ZeroCells => write!(f, "grid must have at least one cell per axis"),
            GridError::TooManyCells => write!(f, "grid cell count exceeds u32::MAX"),
        }
    }
}

impl std::error::Error for GridError {}

/// A uniform partition of a bounding box into `nx × ny` rectangular cells.
///
/// ```
/// use trajgeo::{BBox, Grid, Point2};
///
/// let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
/// let cell = grid.locate(Point2::new(0.3, 0.8));
/// assert_eq!(grid.cell_coords(cell), (1, 3));
/// let center = grid.center(cell);
/// assert!((center.x - 0.375).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Grid {
    bbox: BBox,
    nx: u32,
    ny: u32,
    // Cached cell extents (bbox dimensions / cell counts).
    gx: f64,
    gy: f64,
}

impl Grid {
    /// Builds a grid with `nx × ny` cells over `bbox`.
    pub fn new(bbox: BBox, nx: u32, ny: u32) -> Result<Grid, GridError> {
        if nx == 0 || ny == 0 {
            return Err(GridError::ZeroCells);
        }
        if (nx as u64) * (ny as u64) > u32::MAX as u64 {
            return Err(GridError::TooManyCells);
        }
        Ok(Grid {
            bbox,
            nx,
            ny,
            gx: bbox.width() / nx as f64,
            gy: bbox.height() / ny as f64,
        })
    }

    /// Builds a grid whose cells have (approximately) the requested side
    /// lengths `gx × gy`; cell counts are rounded up so cells never exceed
    /// the request. This mirrors the paper's parameterization by grid size.
    pub fn with_cell_size(bbox: BBox, gx: f64, gy: f64) -> Result<Grid, GridError> {
        if gx <= 0.0 || gy <= 0.0 || gx.is_nan() || gy.is_nan() {
            return Err(GridError::ZeroCells);
        }
        let nx = (bbox.width() / gx).ceil().max(1.0) as u32;
        let ny = (bbox.height() / gy).ceil().max(1.0) as u32;
        Grid::new(bbox, nx, ny)
    }

    /// The discretized region.
    #[inline]
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// Number of cells on the x-axis.
    #[inline]
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Number of cells on the y-axis.
    #[inline]
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Total number of cells `G = nx × ny` — the paper's `G` parameter.
    #[inline]
    pub fn num_cells(&self) -> u32 {
        self.nx * self.ny
    }

    /// Width of each cell (`G_x` in the paper).
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.gx
    }

    /// Height of each cell (`G_y` in the paper).
    #[inline]
    pub fn cell_height(&self) -> f64 {
        self.gy
    }

    /// Cell id for column `cx`, row `cy` (row-major). Returns `None` out of
    /// range.
    #[inline]
    pub fn cell_at(&self, cx: u32, cy: u32) -> Option<CellId> {
        if cx < self.nx && cy < self.ny {
            Some(CellId(cy * self.nx + cx))
        } else {
            None
        }
    }

    /// `(column, row)` coordinates of a cell.
    #[inline]
    pub fn cell_coords(&self, id: CellId) -> (u32, u32) {
        (id.0 % self.nx, id.0 / self.nx)
    }

    /// The cell containing point `p`. Points outside the box are clamped to
    /// the nearest boundary cell, so every finite point maps to some cell
    /// (imprecise trajectories can wander slightly outside the nominal
    /// space; losing them to an error would bias the measure).
    pub fn locate(&self, p: Point2) -> CellId {
        let p = self.bbox.clamp(p);
        let cx = (((p.x - self.bbox.min().x) / self.gx) as u32).min(self.nx - 1);
        let cy = (((p.y - self.bbox.min().y) / self.gy) as u32).min(self.ny - 1);
        CellId(cy * self.nx + cx)
    }

    /// Center of a cell — the canonical pattern position for that cell.
    pub fn center(&self, id: CellId) -> Point2 {
        let (cx, cy) = self.cell_coords(id);
        Point2::new(
            self.bbox.min().x + (cx as f64 + 0.5) * self.gx,
            self.bbox.min().y + (cy as f64 + 0.5) * self.gy,
        )
    }

    /// Iterator over every cell id, in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> {
        (0..self.num_cells()).map(CellId)
    }

    /// Cells whose centers lie within L∞ distance `radius` of point `p`.
    /// Used for sparse scoring: only cells near a trajectory's snapshot mean
    /// contribute non-floor probability mass.
    pub fn cells_within(&self, p: Point2, radius: f64) -> Vec<CellId> {
        let mut out = Vec::new();
        if radius < 0.0 || radius.is_nan() || !p.is_finite() {
            return out;
        }
        let min = self.locate(Point2::new(p.x - radius, p.y - radius));
        let max = self.locate(Point2::new(p.x + radius, p.y + radius));
        let (cx0, cy0) = self.cell_coords(min);
        let (cx1, cy1) = self.cell_coords(max);
        // Tolerate FP rounding so cells exactly `radius` away are included.
        let r = radius * (1.0 + 1e-9) + 1e-12;
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let id = CellId(cy * self.nx + cx);
                if self.center(id).linf_distance(p) <= r {
                    out.push(id);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid(n: u32) -> Grid {
        Grid::new(BBox::unit(), n, n).unwrap()
    }

    #[test]
    fn rejects_bad_dimensions() {
        assert_eq!(Grid::new(BBox::unit(), 0, 4), Err(GridError::ZeroCells));
        assert_eq!(
            Grid::new(BBox::unit(), 100_000, 100_000),
            Err(GridError::TooManyCells)
        );
    }

    #[test]
    fn locate_center_round_trip() {
        let g = unit_grid(10);
        for id in g.cells() {
            let c = g.center(id);
            assert_eq!(g.locate(c), id, "center of {id} must locate back to it");
        }
    }

    #[test]
    fn locate_clamps_outside_points() {
        let g = unit_grid(4);
        assert_eq!(g.locate(Point2::new(-5.0, -5.0)), CellId(0));
        assert_eq!(g.locate(Point2::new(5.0, 5.0)), CellId(15));
    }

    #[test]
    fn coords_round_trip() {
        let g = Grid::new(BBox::unit(), 7, 3).unwrap();
        for id in g.cells() {
            let (cx, cy) = g.cell_coords(id);
            assert_eq!(g.cell_at(cx, cy), Some(id));
        }
        assert_eq!(g.cell_at(7, 0), None);
        assert_eq!(g.cell_at(0, 3), None);
    }

    #[test]
    fn with_cell_size_never_exceeds_request() {
        // Paper §6.1: g_x = g_y = 1/1000 of the side of the space.
        let g = Grid::with_cell_size(BBox::unit(), 1e-3, 1e-3).unwrap();
        assert_eq!(g.nx(), 1000);
        assert!(g.cell_width() <= 1e-3 + 1e-15);
        // Non-dividing size rounds the count up.
        let g = Grid::with_cell_size(BBox::unit(), 0.3, 0.3).unwrap();
        assert_eq!(g.nx(), 4);
        assert!(g.cell_width() <= 0.3);
    }

    #[test]
    fn boundary_point_on_edge_maps_to_last_cell() {
        let g = unit_grid(4);
        // x == 1.0 is the right edge: must clamp into column 3, not overflow.
        assert_eq!(g.cell_coords(g.locate(Point2::new(1.0, 0.1))).0, 3);
    }

    #[test]
    fn cells_within_radius() {
        let g = unit_grid(10); // cells of 0.1, centers at 0.05, 0.15, ...
        let p = Point2::new(0.55, 0.55); // center of cell (5,5)
        let near = g.cells_within(p, 0.1);
        // L∞ ball of radius 0.1 around a center covers the 3×3 neighbourhood.
        assert_eq!(near.len(), 9);
        for id in &near {
            assert!(g.center(*id).linf_distance(p) <= 0.1 + 1e-12);
        }
        // Zero radius: only the cell itself.
        assert_eq!(g.cells_within(p, 0.0), vec![g.locate(p)]);
    }

    #[test]
    fn cells_within_at_corner_is_truncated() {
        let g = unit_grid(10);
        let p = Point2::new(0.05, 0.05);
        let near = g.cells_within(p, 0.1);
        assert_eq!(near.len(), 4); // 2×2 corner neighbourhood
    }

    #[test]
    fn num_cells_matches_iteration() {
        let g = Grid::new(BBox::unit(), 6, 5).unwrap();
        assert_eq!(g.num_cells(), 30);
        assert_eq!(g.cells().count(), 30);
    }
}
