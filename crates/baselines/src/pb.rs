//! Projection-based (PB) miner for NM patterns — the scalability baseline.
//!
//! §6.2: "A projection based (PB) approach \[13\] to mine the normalized
//! match is presented as a baseline algorithm. … At each unspecified
//! position, the maximum match of a position p is used as the up-bound of
//! the possible match. However, this bound could be very loose. As a
//! result, it could be true that every prefix up to length c could be
//! extensible … we need to keep G^c prefixes, which may be too large."
//!
//! The miner grows prefixes depth-first. For a prefix `R` of length `r`,
//! the best NM any completion of length `n` can reach is bounded by
//!
//! ```text
//! NM(R·S) ≤ ( r·NM(R) + (n−r)·B ) / n,   B = Σ_T max_cell NM(cell, T)
//! ```
//!
//! because each unspecified position contributes at most the best
//! per-trajectory singular log-probability. When the maximum of this bound
//! over admissible completion lengths falls below the running k-th-best
//! threshold ω, the subtree is pruned; otherwise **every grid cell** is
//! tried as the next position — the `G^c` explosion the paper measures.
//!
//! The returned pattern set is identical to TrajPattern's (both are exact
//! top-k algorithms); only the work differs.

use trajdata::Dataset;
use trajgeo::fxhash::FxHashSet;
use trajgeo::Grid;
use trajpattern::engine::seed_patterns;
use trajpattern::pattern::{MinedPattern, Pattern};
use trajpattern::topk::ThresholdTracker;
use trajpattern::{MiningParams, ParamsError, Scorer};

/// Work counters of a PB run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PbStats {
    /// Prefixes whose NM was computed against the data.
    pub prefixes_scored: u64,
    /// Subtrees pruned by the completion bound.
    pub subtrees_pruned: u64,
    /// Maximum depth reached.
    pub max_depth: usize,
    /// Whether the search hit its node budget and stopped early (the
    /// result is then a best-effort answer, not the exact top-k).
    pub truncated: bool,
}

/// Result of a PB mining run.
#[derive(Debug, Clone)]
pub struct PbOutcome {
    /// Top-k qualifying patterns, best NM first (same contract as
    /// `trajpattern::mine`).
    pub patterns: Vec<MinedPattern>,
    /// Work counters.
    pub stats: PbStats,
}

/// Mines the top-k NM patterns with the projection-based strategy.
pub fn mine_pb(
    data: &Dataset,
    grid: &Grid,
    params: &MiningParams,
) -> Result<PbOutcome, ParamsError> {
    mine_pb_budgeted(data, grid, params, None)
}

/// Like [`mine_pb`], but stops once `budget` prefixes have been scored
/// (`stats.truncated` is then set). The prefix explosion the paper
/// describes makes PB intractable on large configurations; the budget lets
/// the scalability experiments report an honest lower bound instead of
/// hanging.
pub fn mine_pb_budgeted(
    data: &Dataset,
    grid: &Grid,
    params: &MiningParams,
    budget: Option<u64>,
) -> Result<PbOutcome, ParamsError> {
    params.validate()?;
    let scorer = Scorer::with_threads(data, grid, params.delta, params.min_prob, params.threads);
    let mut stats = PbStats::default();

    if data.is_empty() || grid.num_cells() == 0 {
        return Ok(PbOutcome {
            patterns: Vec::new(),
            stats,
        });
    }
    let data_max_len = data.iter().map(|t| t.len()).max().unwrap_or(0);
    let max_len = params.max_len.min(data_max_len.max(1));
    let min_len = params.min_len;

    // B = Σ_T max_cell NM(cell, T): the per-position optimistic bound.
    // max_cell NM(cell, T) is the best per-trajectory singular value; the
    // sparse singular pass gives per-cell sums, so recompute per trajectory
    // directly (cheap: same sparse sweep, per-trajectory max).
    let per_position_bound = compute_per_position_bound(&scorer);

    let mut tracker = ThresholdTracker::new(params.k);
    let mut pool: Vec<MinedPattern> = Vec::new();

    // Bootstrap ω exactly like the TrajPattern miner when min_len > 1.
    // The DFS will reach these same patterns again; `seeds` prevents the
    // tracker from counting a pattern's NM twice (which would overstate ω
    // and break exactness).
    let mut seeds: FxHashSet<Pattern> = FxHashSet::default();
    if min_len > 1 {
        let seed_pats = seed_patterns(&scorer, min_len, params.k);
        let nms = scorer.score_batch(&seed_pats);
        stats.prefixes_scored += seed_pats.len() as u64;
        for (p, nm) in seed_pats.into_iter().zip(nms) {
            tracker.offer(nm);
            pool.push(MinedPattern::new(p.clone(), nm));
            seeds.insert(p);
        }
    }

    // Depth-first growth from every singular, best singulars first so ω
    // rises quickly.
    let singulars = scorer.nm_all_singulars();
    let mut order: Vec<u32> = (0..grid.num_cells()).collect();
    order.sort_unstable_by(|&a, &b| {
        singulars[b as usize]
            .partial_cmp(&singulars[a as usize])
            .expect("NM values are finite")
            .then_with(|| a.cmp(&b))
    });

    for &cell in &order {
        let p = Pattern::singular(trajgeo::CellId(cell));
        let nm = singulars[cell as usize];
        dfs(
            &scorer,
            &p,
            nm,
            &mut tracker,
            &mut pool,
            &mut stats,
            per_position_bound,
            min_len,
            max_len,
            params.k,
            budget,
            &seeds,
        );
        if stats.truncated {
            break;
        }
    }

    pool.sort_by(|a, b| {
        b.nm.partial_cmp(&a.nm)
            .expect("NM values are finite")
            .then_with(|| a.pattern.cmp(&b.pattern))
    });
    pool.dedup_by(|a, b| a.pattern == b.pattern);
    pool.truncate(params.k);

    Ok(PbOutcome {
        patterns: pool,
        stats,
    })
}

/// `Σ_T max_cell NM(cell, T)`: for each trajectory, the best log
/// probability any single position can score anywhere in it.
fn compute_per_position_bound(scorer: &Scorer<'_>) -> f64 {
    let grid = scorer.grid();
    let floor = scorer.floor_log();
    let mut total = 0.0;
    for traj in scorer.data().iter() {
        let mut best = floor;
        for sp in traj.points() {
            let radius = scorer.delta() + 8.0 * sp.sigma;
            for cell in grid.cells_within(sp.mean, radius) {
                let p = trajgeo::stats::prob_within_delta(
                    sp.mean,
                    sp.sigma,
                    grid.center(cell),
                    scorer.delta(),
                );
                let lp = p.max(floor.exp()).ln();
                if lp > best {
                    best = lp;
                }
            }
        }
        total += best;
    }
    total
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    scorer: &Scorer<'_>,
    prefix: &Pattern,
    prefix_nm: f64,
    tracker: &mut ThresholdTracker,
    pool: &mut Vec<MinedPattern>,
    stats: &mut PbStats,
    per_position_bound: f64,
    min_len: usize,
    max_len: usize,
    k: usize,
    budget: Option<u64>,
    seeds: &FxHashSet<Pattern>,
) {
    if let Some(b) = budget {
        if stats.prefixes_scored >= b {
            stats.truncated = true;
            return;
        }
    }
    stats.max_depth = stats.max_depth.max(prefix.len());
    // Seeds were already offered during the bootstrap; offering them again
    // would double-count their NM in the top-k tracker.
    if prefix.len() >= min_len && !(prefix.len() == min_len && seeds.contains(prefix)) {
        tracker.offer(prefix_nm);
        pool.push(MinedPattern::new(prefix.clone(), prefix_nm));
        // Keep the pool from growing unboundedly: compact periodically
        // (dedup before truncation so duplicates never evict distinct
        // patterns).
        if pool.len() >= 4 * k + 64 {
            pool.sort_by(|a, b| {
                b.nm.partial_cmp(&a.nm)
                    .expect("NM values are finite")
                    .then_with(|| a.pattern.cmp(&b.pattern))
            });
            pool.dedup_by(|a, b| a.pattern == b.pattern);
            pool.truncate(k);
        }
    }
    if prefix.len() >= max_len {
        return;
    }

    // Completion bound: max over n in (max(r+1, min_len))..=max_len of
    // (r·NM + (n−r)·B)/n. The bound is monotone in n toward B, so the max
    // sits at one endpoint.
    let omega = tracker.omega();
    if omega.is_finite() {
        let r = prefix.len() as f64;
        let lo_n = (prefix.len() + 1).max(min_len) as f64;
        let hi_n = max_len as f64;
        let bound_at = |n: f64| (r * prefix_nm + (n - r) * per_position_bound) / n;
        let bound = bound_at(lo_n).max(bound_at(hi_n));
        if bound < omega {
            stats.subtrees_pruned += 1;
            return;
        }
    }

    // Score all G children of this prefix in one batch before recursing —
    // the values are ω-independent, so they are identical to one-at-a-time
    // scoring. Only a budget-truncated run can differ (the cutoff lands on
    // a batch boundary, at most G−1 scores later than sequentially).
    let children: Vec<Pattern> = scorer
        .grid()
        .cells()
        .map(|cell| prefix.concat(&Pattern::singular(cell)))
        .collect();
    let nms = scorer.score_batch(&children);
    stats.prefixes_scored += children.len() as u64;
    for (child, nm) in children.into_iter().zip(nms) {
        if stats.truncated {
            return;
        }
        dfs(
            scorer,
            &child,
            nm,
            tracker,
            pool,
            stats,
            per_position_bound,
            min_len,
            max_len,
            k,
            budget,
            seeds,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdata::{SnapshotPoint, Trajectory};
    use trajgeo::{BBox, Point2};
    use trajpattern::bruteforce::brute_force_top_k;

    fn sweep(n: usize, sigma: f64) -> (Dataset, Grid) {
        let grid = Grid::new(BBox::unit(), 3, 3).unwrap();
        let data: Dataset = (0..n)
            .map(|_| {
                Trajectory::new(
                    (0..3)
                        .map(|i| {
                            SnapshotPoint::new(Point2::new(1.0 / 6.0 + i as f64 / 3.0, 0.5), sigma)
                                .unwrap()
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        (data, grid)
    }

    #[test]
    fn agrees_with_brute_force() {
        let (data, grid) = sweep(5, 0.06);
        let params = MiningParams::new(7, 0.15).unwrap().with_max_len(3).unwrap();
        let reference = brute_force_top_k(&data, &grid, &params).unwrap();
        let out = mine_pb(&data, &grid, &params).unwrap();
        assert_eq!(out.patterns.len(), reference.len());
        for (m, r) in out.patterns.iter().zip(&reference) {
            assert!(
                (m.nm - r.nm).abs() < 1e-9,
                "PB {} ({}) vs brute {} ({})",
                m.pattern,
                m.nm,
                r.pattern,
                r.nm
            );
        }
    }

    #[test]
    fn agrees_with_trajpattern_miner() {
        let (data, grid) = sweep(6, 0.08);
        let params = MiningParams::new(5, 0.15)
            .unwrap()
            .with_min_len(2)
            .unwrap()
            .with_max_len(3)
            .unwrap();
        let a = trajpattern::mine(&data, &grid, &params).unwrap();
        let b = mine_pb(&data, &grid, &params).unwrap();
        assert_eq!(a.patterns.len(), b.patterns.len());
        for (x, y) in a.patterns.iter().zip(&b.patterns) {
            assert!((x.nm - y.nm).abs() < 1e-9);
        }
    }

    #[test]
    fn pruning_fires_once_threshold_established() {
        let (data, grid) = sweep(6, 0.04);
        let params = MiningParams::new(2, 0.15).unwrap().with_max_len(3).unwrap();
        let out = mine_pb(&data, &grid, &params).unwrap();
        assert!(out.stats.subtrees_pruned > 0);
        assert!(out.stats.prefixes_scored > 0);
        assert_eq!(out.stats.max_depth, 3);
    }

    #[test]
    fn empty_dataset_is_empty() {
        let grid = Grid::new(BBox::unit(), 2, 2).unwrap();
        let params = MiningParams::new(3, 0.1).unwrap();
        let out = mine_pb(&Dataset::new(), &grid, &params).unwrap();
        assert!(out.patterns.is_empty());
    }
}
