//! Apriori-style top-k miner for the (non-normalized) match measure.
//!
//! The match of a pattern is `Σ_T max_window M(P, T')` — the expected
//! best-aligned occurrence count (Yang et al. \[14\]). Because every
//! per-position probability is ≤ 1, extending a pattern can only lower
//! its match: the measure is anti-monotone and the classic Apriori
//! level-wise search applies. The paper (§3.3) points out exactly this:
//! "the Apriori property holds on the match measure, but not on the NM
//! measure".
//!
//! Mining is top-k with a dynamic threshold, mirroring the TrajPattern
//! setup so that the Fig. 3 comparison is apples-to-apples: the k-th best
//! match among qualifying patterns (length ≥ `min_len`) prunes the level
//! frontier.

use trajdata::Dataset;
use trajgeo::Grid;
use trajpattern::engine::seed_patterns;
use trajpattern::pattern::Pattern;
use trajpattern::{MiningParams, ParamsError, Scorer};

/// A pattern with its match value.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedMatchPattern {
    /// The pattern.
    pub pattern: Pattern,
    /// Its match (expected best-aligned occurrences), in `[0, |D|]`.
    pub match_value: f64,
}

/// Result of a match-measure mining run.
#[derive(Debug, Clone)]
pub struct MatchMiningOutcome {
    /// Top-k qualifying patterns, best match first.
    pub patterns: Vec<MinedMatchPattern>,
    /// Number of patterns whose match was computed.
    pub evaluated: u64,
    /// Number of levels (pattern lengths) explored.
    pub levels: usize,
}

/// Mines the `params.k` patterns with the highest match of length ≥
/// `params.min_len` (and ≤ `params.max_len`).
///
/// Reuses [`MiningParams`] for the shared knobs (`k`, `delta`, `min_prob`,
/// length bounds); the pruning flags are ignored (Apriori pruning is
/// inherent to the level-wise search).
pub fn mine_match(
    data: &Dataset,
    grid: &Grid,
    params: &MiningParams,
) -> Result<MatchMiningOutcome, ParamsError> {
    params.validate()?;
    let scorer = Scorer::with_threads(data, grid, params.delta, params.min_prob, params.threads);
    let mut evaluated: u64 = 0;

    if data.is_empty() || grid.num_cells() == 0 {
        return Ok(MatchMiningOutcome {
            patterns: Vec::new(),
            evaluated,
            levels: 0,
        });
    }
    let data_max_len = data.iter().map(|t| t.len()).max().unwrap_or(0);
    let max_len = params.max_len.min(data_max_len.max(1));

    // Top-k threshold over qualifying patterns.
    let mut pool: Vec<MinedMatchPattern> = Vec::new();
    let mut omega = 0.0_f64; // match values are >= 0; 0 disables pruning
    let mut have = 0usize;

    let offer = |pool: &mut Vec<MinedMatchPattern>,
                 omega: &mut f64,
                 have: &mut usize,
                 p: &Pattern,
                 v: f64,
                 min_len: usize,
                 k: usize| {
        if p.len() >= min_len {
            pool.push(MinedMatchPattern {
                pattern: p.clone(),
                match_value: v,
            });
            *have += 1;
            if *have >= k {
                // Recompute the k-th best lazily: sort/dedup/truncate the
                // pool when it doubles, keeping the cost amortized.
                // Deduplication matters: the seed bootstrap and the
                // level-wise search can reach the same pattern, and a
                // duplicated value must not count twice toward ω.
                if pool.len() >= 2 * k {
                    pool.sort_by(|a, b| {
                        b.match_value
                            .partial_cmp(&a.match_value)
                            .expect("match values are finite")
                            .then_with(|| a.pattern.cmp(&b.pattern))
                    });
                    pool.dedup_by(|a, b| a.pattern == b.pattern);
                    pool.truncate(k);
                }
                if pool.len() >= k {
                    let kth = pool
                        .iter()
                        .map(|m| m.match_value)
                        .fold(f64::INFINITY, f64::min);
                    if kth > *omega {
                        *omega = kth;
                    }
                }
            }
        }
    };

    // min_len bootstrap: prime ω with genuine qualifying patterns from the
    // data windows, exactly like the TrajPattern miner does.
    // Scores never depend on ω, so each group of patterns below is scored
    // in one batch and the offer / frontier bookkeeping is replayed in the
    // original order — bit-identical to scoring one at a time.
    if params.min_len > 1 {
        let seeds = seed_patterns(&scorer, params.min_len, params.k);
        let values = scorer.score_batch_match(&seeds);
        evaluated += seeds.len() as u64;
        for (p, v) in seeds.iter().zip(values) {
            offer(
                &mut pool,
                &mut omega,
                &mut have,
                p,
                v,
                params.min_len,
                params.k,
            );
        }
    }

    // Level 1: all singulars, one batch.
    let mut frontier: Vec<(Pattern, f64)> = Vec::new();
    let singulars: Vec<Pattern> = grid.cells().map(Pattern::singular).collect();
    let values = scorer.score_batch_match(&singulars);
    evaluated += singulars.len() as u64;
    for (p, v) in singulars.into_iter().zip(values) {
        offer(
            &mut pool,
            &mut omega,
            &mut have,
            &p,
            v,
            params.min_len,
            params.k,
        );
        if v >= omega {
            frontier.push((p, v));
        }
    }

    let mut levels = 1;
    while !frontier.is_empty() && levels < max_len {
        levels += 1;
        let mut next: Vec<(Pattern, f64)> = Vec::new();
        for (p, parent_match) in &frontier {
            // Apriori: a child can never beat its parent. The check uses
            // the ω current *before* this parent's children are offered,
            // exactly as in the sequential order.
            if *parent_match < omega {
                continue;
            }
            let children: Vec<Pattern> = grid
                .cells()
                .map(|cell| p.concat(&Pattern::singular(cell)))
                .collect();
            let values = scorer.score_batch_match(&children);
            evaluated += children.len() as u64;
            for (child, v) in children.into_iter().zip(values) {
                offer(
                    &mut pool,
                    &mut omega,
                    &mut have,
                    &child,
                    v,
                    params.min_len,
                    params.k,
                );
                if v >= omega {
                    next.push((child, v));
                }
            }
        }
        frontier = next;
    }

    pool.sort_by(|a, b| {
        b.match_value
            .partial_cmp(&a.match_value)
            .expect("match values are finite")
            .then_with(|| a.pattern.cmp(&b.pattern))
    });
    pool.dedup_by(|a, b| a.pattern == b.pattern);
    pool.truncate(params.k);

    Ok(MatchMiningOutcome {
        patterns: pool,
        evaluated,
        levels,
    })
}

/// Average length of a mined pattern set — the §6.1 statistic (avg length
/// of top-1000 match patterns ≈ 3.18 vs NM patterns ≈ 4.2). Returns 0 for
/// an empty set.
pub fn average_length(patterns: impl IntoIterator<Item = usize>) -> f64 {
    let mut n = 0usize;
    let mut sum = 0usize;
    for len in patterns {
        n += 1;
        sum += len;
    }
    if n == 0 {
        0.0
    } else {
        sum as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdata::{SnapshotPoint, Trajectory};
    use trajgeo::{BBox, CellId, Point2};

    fn sweep(n: usize, sigma: f64) -> (Dataset, Grid) {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let data: Dataset = (0..n)
            .map(|_| {
                Trajectory::new(
                    (0..4)
                        .map(|i| {
                            SnapshotPoint::new(Point2::new(0.125 + i as f64 * 0.25, 0.625), sigma)
                                .unwrap()
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        (data, grid)
    }

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| CellId(i)).collect()).unwrap()
    }

    #[test]
    fn top_match_singulars_are_on_path() {
        let (data, grid) = sweep(8, 0.03);
        let params = MiningParams::new(4, 0.1).unwrap().with_max_len(1).unwrap();
        let out = mine_match(&data, &grid, &params).unwrap();
        assert_eq!(out.patterns.len(), 4);
        let cells: Vec<u32> = out
            .patterns
            .iter()
            .map(|m| m.pattern.cells()[0].0)
            .collect();
        for c in [8, 9, 10, 11] {
            assert!(cells.contains(&c), "missing c{c} in {cells:?}");
        }
    }

    #[test]
    fn match_values_in_range_and_sorted() {
        let (data, grid) = sweep(5, 0.05);
        let params = MiningParams::new(6, 0.1).unwrap().with_max_len(3).unwrap();
        let out = mine_match(&data, &grid, &params).unwrap();
        assert_eq!(out.patterns.len(), 6);
        for w in out.patterns.windows(2) {
            assert!(w[0].match_value >= w[1].match_value);
        }
        for m in &out.patterns {
            assert!(m.match_value >= 0.0 && m.match_value <= 5.0 + 1e-9);
        }
    }

    #[test]
    fn finds_the_long_path_when_asked() {
        let (data, grid) = sweep(10, 0.02);
        let params = MiningParams::new(1, 0.1)
            .unwrap()
            .with_min_len(4)
            .unwrap()
            .with_max_len(4)
            .unwrap();
        let out = mine_match(&data, &grid, &params).unwrap();
        assert_eq!(out.patterns.len(), 1);
        assert_eq!(out.patterns[0].pattern, pat(&[8, 9, 10, 11]));
    }

    #[test]
    fn matches_brute_force_on_match_measure() {
        // Exhaustively verify on a tiny instance.
        let (data, grid) = sweep(4, 0.08);
        let params = MiningParams::new(8, 0.1).unwrap().with_max_len(2).unwrap();
        let scorer = Scorer::new(&data, &grid, 0.1, params.min_prob);
        let mut all: Vec<(Pattern, f64)> = Vec::new();
        for a in grid.cells() {
            let p = Pattern::singular(a);
            all.push((p.clone(), scorer.match_score(&p)));
            for b in grid.cells() {
                let p2 = p.concat(&Pattern::singular(b));
                let v = scorer.match_score(&p2);
                all.push((p2, v));
            }
        }
        all.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap().then_with(|| x.0.cmp(&y.0)));
        let out = mine_match(&data, &grid, &params).unwrap();
        for (m, (_, v)) in out.patterns.iter().zip(&all) {
            assert!(
                (m.match_value - v).abs() < 1e-9,
                "mined {} vs brute {v}",
                m.match_value
            );
        }
    }

    #[test]
    fn empty_dataset_is_empty() {
        let grid = Grid::new(BBox::unit(), 2, 2).unwrap();
        let params = MiningParams::new(3, 0.1).unwrap();
        let out = mine_match(&Dataset::new(), &grid, &params).unwrap();
        assert!(out.patterns.is_empty());
    }

    #[test]
    fn average_length_helper() {
        assert_eq!(average_length([3usize, 4, 5]), 4.0);
        assert_eq!(average_length(std::iter::empty::<usize>()), 0.0);
    }
}
