//! Baseline miners for the TrajPattern evaluation (§6 of the paper).
//!
//! Two comparison systems are rebuilt here:
//!
//! - [`match_miner`]: an Apriori-style level-wise miner for the
//!   *non-normalized* **match** measure of Yang et al. \[14\] ("Mining long
//!   sequential patterns in a noisy environment", SIGMOD 2002). The match
//!   measure satisfies the Apriori property, which is the only property the
//!   original border-collapsing machinery relies on; the level-wise miner
//!   returns the identical top-k answer (see DESIGN.md §3 on this
//!   substitution). Used by the Fig. 3 effectiveness comparison.
//!
//! - [`pb`]: a projection-based miner for the **NM** measure in the spirit
//!   of InfoMiner \[13\], the scalability baseline of §6.2. It grows
//!   prefixes depth-first, bounding every unspecified position by the best
//!   per-trajectory singular NM — the loose bound whose prefix explosion
//!   the paper's Fig. 4 measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod match_miner;
pub mod pb;

pub use match_miner::{mine_match, MatchMiningOutcome, MinedMatchPattern};
pub use pb::{mine_pb, PbOutcome, PbStats};
